//! MPI message-matching semantics.
//!
//! Each rank owns a [`MatchEngine`] holding the two canonical MPI queues:
//! the *unexpected-message queue* (messages that arrived before a matching
//! receive was posted, in arrival order) and the *posted-receive queue*
//! (receives not yet satisfied, in post order). Matching follows the MPI
//! standard:
//!
//! * when a message arrives, it is delivered to the **first posted** receive
//!   whose source/tag specification it satisfies;
//! * when a receive is posted, it consumes the **first arrived** matching
//!   message from the unexpected queue;
//! * messages on the same `(src, dst)` channel are matched in send order
//!   (non-overtaking). The engine guarantees this by clamping per-channel
//!   delivery times monotonically, so arrival order within a channel equals
//!   send order and the two scans above preserve it.
//!
//! A receive may carry a *forced match* constraint — the record/replay
//! mechanism (`crate::replay`) pins a wildcard receive to the exact message
//! it consumed in a recorded run.
//!
//! ## Per-channel layout
//!
//! Both queues are *partitioned by the concrete source rank* instead of
//! being flat `VecDeque`s scanned front to back:
//!
//! * unexpected messages live in one FIFO per `(src, dst)` channel;
//! * posted receives with a concrete source spec live in one FIFO per
//!   source; source-wildcard receives live in a dedicated FIFO.
//!
//! Every entry carries a monotone *stamp* (arrival order for messages,
//! post order for receives), so the MPI-ordained global scan order can be
//! recovered as a minimum over per-queue heads. A receive with source
//! `Rank(s)` (or a replay constraint pinning source `s`) only ever
//! inspects channel `s`; an arrival from `s` only ever inspects the
//! `s`-specific receive FIFO and the wildcard FIFO. This turns the former
//! O(pending) scans — quadratic over a deep all-to-all phase — into scans
//! bounded by the one queue that can possibly match, while producing the
//! *bit-identical* match decisions (asserted against the flat reference
//! implementation below).
//!
//! Determinism audit (schedule explorer prerequisite): every container is
//! a `Vec`/`VecDeque` — there is no hash map (or other
//! iteration-order-unstable structure) anywhere in the matching path.
//! Cross-queue choices are resolved by unique integer stamps, so iteration
//! order of the channel list cannot influence the result. `Clone` is
//! derived so the explorer can snapshot a destination's matching state at
//! each branch point.

use crate::types::{ChannelSeq, Rank, ReqSlot, SimTime, SrcSpec, Tag, TagSpec};
use std::collections::VecDeque;

/// A message travelling through (or parked at) the destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InFlightMsg {
    /// Sending rank.
    pub src: Rank,
    /// Destination rank.
    pub dst: Rank,
    /// Message tag.
    pub tag: Tag,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Position of this message on the `(src, dst)` channel.
    pub seq: ChannelSeq,
    /// Rank-local index of the send event that injected the message.
    pub send_event_idx: u32,
    /// Delivery time at the destination.
    pub arrival: SimTime,
    /// True for synchronous (`MPI_Ssend`) messages: the sender is blocked
    /// until this message is matched.
    pub sync: bool,
}

/// How a posted receive completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostKind {
    /// A blocking `MPI_Recv`; the rank is descheduled until it matches.
    Blocking,
    /// A nonblocking `MPI_Irecv` completing into the given request slot.
    Nonblocking(ReqSlot),
}

/// A receive waiting in the posted queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostedRecv {
    /// Source specification.
    pub src: SrcSpec,
    /// Tag specification.
    pub tag: TagSpec,
    /// Rank-local index of the receive's trace event (blocking receives
    /// only; nonblocking completions are emitted at the wait).
    pub event_idx: u32,
    /// Posting ordinal of the receive on its rank (record/replay key).
    pub ordinal: u32,
    /// Blocking or nonblocking completion.
    pub kind: PostKind,
    /// Local time at which the receive was posted.
    pub posted_at: SimTime,
    /// Replay constraint: only the message with this `(src, seq)` may match.
    pub forced: Option<(Rank, ChannelSeq)>,
}

impl PostedRecv {
    /// Does `msg` satisfy this receive (including any replay constraint)?
    #[inline]
    pub fn accepts(&self, msg: &InFlightMsg) -> bool {
        if !self.src.matches(msg.src) || !self.tag.matches(msg.tag) {
            return false;
        }
        match self.forced {
            Some((src, seq)) => msg.src == src && msg.seq == seq,
            None => true,
        }
    }

    /// The only source rank whose messages can satisfy this receive, if
    /// the spec (or a replay constraint) pins one.
    #[inline]
    fn pinned_src(&self) -> Option<Rank> {
        match (self.forced, self.src) {
            // A forced match names its source explicitly; even if the src
            // spec disagrees (which `accepts` would reject anyway), only
            // that channel can possibly produce a match.
            (Some((src, _)), _) => Some(src),
            (None, SrcSpec::Rank(r)) => Some(r),
            (None, SrcSpec::Any) => None,
        }
    }
}

/// A queue entry tagged with its global insertion stamp.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Stamped<T> {
    stamp: u64,
    item: T,
}

/// Per-destination matching state (see module docs for the layout).
#[derive(Debug, Default, Clone)]
pub struct MatchEngine {
    /// Parked messages per source channel, each FIFO in arrival order.
    unexpected: Vec<VecDeque<Stamped<InFlightMsg>>>,
    /// Source channels whose unexpected FIFO may be nonempty (compacted
    /// lazily; membership tracked by `busy`). Scan order over this list is
    /// irrelevant — winners are chosen by stamp minimum.
    busy_chans: Vec<u32>,
    /// `busy[c]` ⇔ channel `c` is present in `busy_chans`.
    busy: Vec<bool>,
    unexpected_count: usize,
    arrival_stamp: u64,
    /// Posted receives with a pinned source, per source channel.
    specific: Vec<VecDeque<Stamped<PostedRecv>>>,
    specific_count: usize,
    /// Posted receives with an unconstrained (`Any`) source.
    wildcard: VecDeque<Stamped<PostedRecv>>,
    post_stamp: u64,
}

impl MatchEngine {
    /// An empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow the per-channel tables to cover source rank `src`.
    fn ensure_chan(&mut self, src: Rank) {
        let need = src.index() + 1;
        if self.unexpected.len() < need {
            self.unexpected.resize_with(need, VecDeque::new);
            self.busy.resize(need, false);
            self.specific.resize_with(need, VecDeque::new);
        }
    }

    /// Handle a message arrival. Returns the satisfied receive paired with
    /// the message, or parks the message in the unexpected queue.
    ///
    /// Only two FIFOs can hold an accepting receive: the one specific to
    /// `msg.src` and the wildcard FIFO. The first accepting entry of each
    /// is found by a local scan; the earlier *post stamp* wins — exactly
    /// the receive a front-to-back scan of the flat posted queue would
    /// have selected.
    pub fn on_arrival(&mut self, msg: InFlightMsg) -> Option<(PostedRecv, InFlightMsg)> {
        self.ensure_chan(msg.src);
        let chan = msg.src.index();
        let spec_hit = self.specific[chan]
            .iter()
            .position(|r| r.item.accepts(&msg))
            .map(|pos| (pos, self.specific[chan][pos].stamp));
        let wild_hit = self
            .wildcard
            .iter()
            .position(|r| r.item.accepts(&msg))
            .map(|pos| (pos, self.wildcard[pos].stamp));
        let winner = match (spec_hit, wild_hit) {
            (Some((sp, ss)), Some((_, ws))) if ss < ws => Some((true, sp)),
            (Some(_), Some((wp, _))) => Some((false, wp)),
            (Some((sp, _)), None) => Some((true, sp)),
            (None, Some((wp, _))) => Some((false, wp)),
            (None, None) => None,
        };
        match winner {
            Some((true, pos)) => {
                let recv = self.specific[chan].remove(pos).expect("position in range");
                self.specific_count -= 1;
                Some((recv.item, msg))
            }
            Some((false, pos)) => {
                let recv = self.wildcard.remove(pos).expect("position in range");
                Some((recv.item, msg))
            }
            None => {
                let stamp = self.arrival_stamp;
                self.arrival_stamp += 1;
                self.unexpected[chan].push_back(Stamped { stamp, item: msg });
                self.unexpected_count += 1;
                if !self.busy[chan] {
                    self.busy[chan] = true;
                    self.busy_chans.push(chan as u32);
                }
                None
            }
        }
    }

    /// Handle a newly posted receive. Returns the receive paired with the
    /// matched message, or parks the receive in the posted queue.
    ///
    /// A source-pinned receive inspects only its channel's FIFO; a true
    /// wildcard takes the minimum arrival stamp over the first accepting
    /// message of every busy channel — the message a front-to-back scan
    /// of the flat unexpected queue would have found first.
    pub fn on_post(&mut self, recv: PostedRecv) -> Option<(PostedRecv, InFlightMsg)> {
        let hit = match recv.pinned_src() {
            Some(src) => {
                self.ensure_chan(src);
                let chan = src.index();
                self.unexpected[chan]
                    .iter()
                    .position(|m| recv.accepts(&m.item))
                    .map(|pos| (chan, pos))
            }
            None => self.scan_any(&recv),
        };
        match hit {
            Some((chan, pos)) => {
                let msg = self.unexpected[chan]
                    .remove(pos)
                    .expect("position in range");
                self.unexpected_count -= 1;
                Some((recv, msg.item))
            }
            None => {
                let stamp = self.post_stamp;
                self.post_stamp += 1;
                match recv.pinned_src() {
                    Some(src) => {
                        self.ensure_chan(src);
                        self.specific[src.index()].push_back(Stamped { stamp, item: recv });
                        self.specific_count += 1;
                    }
                    None => self.wildcard.push_back(Stamped { stamp, item: recv }),
                }
                None
            }
        }
    }

    /// First-arrived accepting message across all busy channels, as
    /// `(channel, position)`. Compacts emptied channels out of the busy
    /// list on the way.
    fn scan_any(&mut self, recv: &PostedRecv) -> Option<(usize, usize)> {
        let mut best: Option<(u64, usize, usize)> = None;
        let mut i = 0;
        while i < self.busy_chans.len() {
            let chan = self.busy_chans[i] as usize;
            if self.unexpected[chan].is_empty() {
                self.busy[chan] = false;
                self.busy_chans.swap_remove(i);
                continue;
            }
            if let Some(pos) = self.unexpected[chan]
                .iter()
                .position(|m| recv.accepts(&m.item))
            {
                let stamp = self.unexpected[chan][pos].stamp;
                if best.is_none_or(|(bs, _, _)| stamp < bs) {
                    best = Some((stamp, chan, pos));
                }
            }
            i += 1;
        }
        best.map(|(_, chan, pos)| (chan, pos))
    }

    /// Number of parked (arrived but unmatched) messages.
    pub fn unexpected_len(&self) -> usize {
        self.unexpected_count
    }

    /// Number of posted-but-unsatisfied receives.
    pub fn posted_len(&self) -> usize {
        self.specific_count + self.wildcard.len()
    }

    /// Drain parked messages in arrival order (end-of-run diagnostics).
    pub fn drain_unexpected(&mut self) -> impl Iterator<Item = InFlightMsg> + '_ {
        let mut all: Vec<Stamped<InFlightMsg>> = Vec::with_capacity(self.unexpected_count);
        for q in &mut self.unexpected {
            all.extend(q.drain(..));
        }
        all.sort_by_key(|s| s.stamp);
        self.unexpected_count = 0;
        self.busy_chans.clear();
        self.busy.iter_mut().for_each(|b| *b = false);
        all.into_iter().map(|s| s.item)
    }

    /// Iterate over posted-but-unsatisfied receives in post order
    /// (deadlock diagnostics, explorer branch-relevance checks).
    pub fn posted_iter(&self) -> impl Iterator<Item = &PostedRecv> {
        let mut all: Vec<&Stamped<PostedRecv>> = self
            .specific
            .iter()
            .flatten()
            .chain(self.wildcard.iter())
            .collect();
        all.sort_by_key(|s| s.stamp);
        all.into_iter().map(|s| &s.item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// The original flat-queue engine, kept verbatim as the differential
    /// oracle: both queues are `VecDeque`s scanned front to back, mid-queue
    /// removal via `remove(pos)`.
    #[derive(Debug, Default, Clone)]
    struct RefEngine {
        unexpected: VecDeque<InFlightMsg>,
        posted: VecDeque<PostedRecv>,
    }

    impl RefEngine {
        fn on_arrival(&mut self, msg: InFlightMsg) -> Option<(PostedRecv, InFlightMsg)> {
            if let Some(pos) = self.posted.iter().position(|r| r.accepts(&msg)) {
                let recv = self.posted.remove(pos).expect("position is in range");
                Some((recv, msg))
            } else {
                self.unexpected.push_back(msg);
                None
            }
        }

        fn on_post(&mut self, recv: PostedRecv) -> Option<(PostedRecv, InFlightMsg)> {
            if let Some(pos) = self.unexpected.iter().position(|m| recv.accepts(m)) {
                let msg = self.unexpected.remove(pos).expect("position is in range");
                Some((recv, msg))
            } else {
                self.posted.push_back(recv);
                None
            }
        }
    }

    fn msg(src: u32, tag: i32, seq: u64, arrival: u64) -> InFlightMsg {
        InFlightMsg {
            src: Rank(src),
            dst: Rank(0),
            tag: Tag(tag),
            bytes: 8,
            seq: ChannelSeq(seq),
            send_event_idx: 0,
            arrival: SimTime(arrival),
            sync: false,
        }
    }

    fn recv(src: SrcSpec, tag: TagSpec) -> PostedRecv {
        PostedRecv {
            src,
            tag,
            event_idx: 0,
            ordinal: 0,
            kind: PostKind::Blocking,
            posted_at: SimTime::ZERO,
            forced: None,
        }
    }

    #[test]
    fn arrival_matches_first_posted() {
        let mut e = MatchEngine::new();
        assert!(e
            .on_post(recv(SrcSpec::Rank(Rank(9)), TagSpec::Any))
            .is_none());
        assert!(e.on_post(recv(SrcSpec::Any, TagSpec::Any)).is_none());
        let (r, m) = e.on_arrival(msg(1, 0, 0, 10)).expect("must match");
        // First posted receive is src-specific and does not accept rank 1;
        // the wildcard (second posted) wins.
        assert_eq!(r.src, SrcSpec::Any);
        assert_eq!(m.src, Rank(1));
        assert_eq!(e.posted_len(), 1);
    }

    #[test]
    fn post_matches_earliest_arrival() {
        let mut e = MatchEngine::new();
        assert!(e.on_arrival(msg(2, 0, 0, 20)).is_none());
        assert!(e.on_arrival(msg(1, 0, 0, 30)).is_none());
        let (_, m) = e
            .on_post(recv(SrcSpec::Any, TagSpec::Any))
            .expect("must match");
        assert_eq!(m.src, Rank(2), "earliest arrival wins");
        assert_eq!(e.unexpected_len(), 1);
    }

    #[test]
    fn tag_filtering() {
        let mut e = MatchEngine::new();
        e.on_arrival(msg(1, 7, 0, 10));
        assert!(e
            .on_post(recv(SrcSpec::Any, TagSpec::Tag(Tag(8))))
            .is_none());
        let got = e.on_post(recv(SrcSpec::Any, TagSpec::Tag(Tag(7))));
        assert!(got.is_some());
    }

    #[test]
    fn forced_match_skips_other_messages() {
        let mut e = MatchEngine::new();
        e.on_arrival(msg(1, 0, 0, 10));
        e.on_arrival(msg(2, 0, 0, 11));
        let mut r = recv(SrcSpec::Any, TagSpec::Any);
        r.forced = Some((Rank(2), ChannelSeq(0)));
        let (_, m) = e.on_post(r).expect("forced message is present");
        assert_eq!(m.src, Rank(2));
        assert_eq!(e.unexpected_len(), 1);
    }

    #[test]
    fn forced_match_blocks_until_target_arrives() {
        let mut e = MatchEngine::new();
        let mut r = recv(SrcSpec::Any, TagSpec::Any);
        r.forced = Some((Rank(2), ChannelSeq(1)));
        assert!(e.on_post(r).is_none());
        // A non-target message parks.
        assert!(e.on_arrival(msg(2, 0, 0, 5)).is_none());
        assert_eq!(e.unexpected_len(), 1);
        // The target matches.
        let got = e.on_arrival(msg(2, 0, 1, 6));
        assert!(got.is_some());
    }

    #[test]
    fn channel_order_preserved_within_channel() {
        // Two messages from the same source; the earlier-arriving (lower
        // seq, by engine clamping) must match the first wildcard receive.
        let mut e = MatchEngine::new();
        e.on_arrival(msg(1, 0, 0, 10));
        e.on_arrival(msg(1, 0, 1, 12));
        let (_, m1) = e.on_post(recv(SrcSpec::Any, TagSpec::Any)).unwrap();
        let (_, m2) = e.on_post(recv(SrcSpec::Any, TagSpec::Any)).unwrap();
        assert_eq!(m1.seq, ChannelSeq(0));
        assert_eq!(m2.seq, ChannelSeq(1));
    }

    #[test]
    fn drain_unexpected_reports_leftovers() {
        let mut e = MatchEngine::new();
        e.on_arrival(msg(1, 0, 0, 10));
        e.on_arrival(msg(2, 0, 0, 11));
        let left: Vec<_> = e.drain_unexpected().collect();
        assert_eq!(left.len(), 2);
        // Drain preserves arrival order across channels.
        assert_eq!((left[0].src, left[1].src), (Rank(1), Rank(2)));
        assert_eq!(e.unexpected_len(), 0);
    }

    #[test]
    fn mid_queue_removal_preserves_scan_order() {
        // Regression for the determinism audit: consuming an element from
        // the middle of either queue must leave the remaining elements in
        // their original relative order, or replay and exploration would
        // silently diverge from free runs.
        let mut e = MatchEngine::new();
        e.on_arrival(msg(1, 1, 0, 10));
        e.on_arrival(msg(2, 2, 0, 11));
        e.on_arrival(msg(3, 3, 0, 12));
        // Take the middle message (tag 2) out of the unexpected queue…
        let (_, m) = e.on_post(recv(SrcSpec::Any, TagSpec::Tag(Tag(2)))).unwrap();
        assert_eq!(m.src, Rank(2));
        // …then wildcard posts must still see 1 before 3.
        let (_, a) = e.on_post(recv(SrcSpec::Any, TagSpec::Any)).unwrap();
        let (_, b) = e.on_post(recv(SrcSpec::Any, TagSpec::Any)).unwrap();
        assert_eq!((a.src, b.src), (Rank(1), Rank(3)));

        // Same property for the posted queue: match the middle receive…
        let mut e = MatchEngine::new();
        assert!(e
            .on_post(recv(SrcSpec::Rank(Rank(1)), TagSpec::Any))
            .is_none());
        assert!(e
            .on_post(recv(SrcSpec::Rank(Rank(2)), TagSpec::Any))
            .is_none());
        assert!(e.on_post(recv(SrcSpec::Any, TagSpec::Any)).is_none());
        let (r, _) = e.on_arrival(msg(2, 0, 0, 5)).unwrap();
        assert_eq!(r.src, SrcSpec::Rank(Rank(2)));
        // …and an untargeted message must still prefer the earlier post.
        let (r, _) = e.on_arrival(msg(1, 0, 0, 6)).unwrap();
        assert_eq!(r.src, SrcSpec::Rank(Rank(1)));
        assert_eq!(e.posted_len(), 1);
    }

    #[test]
    fn cloned_engine_is_independent_and_identical() {
        let mut e = MatchEngine::new();
        e.on_arrival(msg(1, 0, 0, 10));
        assert!(e
            .on_post(recv(SrcSpec::Any, TagSpec::Tag(Tag(9))))
            .is_none());
        let mut snap = e.clone();
        assert_eq!(snap.unexpected_len(), e.unexpected_len());
        assert_eq!(snap.posted_len(), e.posted_len());
        // Mutating the clone leaves the original untouched.
        let got = snap.on_post(recv(SrcSpec::Any, TagSpec::Any));
        assert!(got.is_some());
        assert_eq!(snap.unexpected_len(), 0);
        assert_eq!(e.unexpected_len(), 1);
    }

    #[test]
    fn accepts_respects_src_and_tag_and_force() {
        let m = msg(3, 5, 2, 0);
        let mut r = recv(SrcSpec::Rank(Rank(3)), TagSpec::Tag(Tag(5)));
        assert!(r.accepts(&m));
        r.forced = Some((Rank(3), ChannelSeq(2)));
        assert!(r.accepts(&m));
        r.forced = Some((Rank(3), ChannelSeq(3)));
        assert!(!r.accepts(&m));
        let r2 = recv(SrcSpec::Rank(Rank(4)), TagSpec::Any);
        assert!(!r2.accepts(&m));
    }

    #[test]
    fn posted_iter_is_in_post_order_across_queues() {
        let mut e = MatchEngine::new();
        assert!(e
            .on_post(recv(SrcSpec::Rank(Rank(5)), TagSpec::Any))
            .is_none());
        assert!(e
            .on_post(recv(SrcSpec::Any, TagSpec::Tag(Tag(1))))
            .is_none());
        assert!(e
            .on_post(recv(SrcSpec::Rank(Rank(2)), TagSpec::Any))
            .is_none());
        let srcs: Vec<SrcSpec> = e.posted_iter().map(|p| p.src).collect();
        assert_eq!(
            srcs,
            vec![SrcSpec::Rank(Rank(5)), SrcSpec::Any, SrcSpec::Rank(Rank(2))]
        );
    }

    #[test]
    fn deep_queue_wildcard_posts_preserve_cross_channel_arrival_order() {
        // Deep-queue regression: hundreds of parked messages across many
        // channels; wildcard posts must consume them in exact global
        // arrival order, not per-channel round-robin order.
        let mut e = MatchEngine::new();
        let mut expect = Vec::new();
        // Interleave arrivals: channels 0..16, 16 messages each, in a
        // fixed but scrambled channel pattern.
        let mut seqs = [0u64; 16];
        for i in 0..256u64 {
            let src = ((i * 7) % 16) as u32;
            let seq = seqs[src as usize];
            seqs[src as usize] += 1;
            assert!(e.on_arrival(msg(src, 0, seq, i)).is_none());
            expect.push((Rank(src), ChannelSeq(seq)));
        }
        assert_eq!(e.unexpected_len(), 256);
        for (i, (src, seq)) in expect.iter().enumerate() {
            let (_, m) = e
                .on_post(recv(SrcSpec::Any, TagSpec::Any))
                .unwrap_or_else(|| panic!("post {i} must match"));
            assert_eq!((m.src, m.seq), (*src, *seq), "post {i}");
        }
        assert_eq!(e.unexpected_len(), 0);
    }

    #[test]
    fn deep_queue_arrivals_prefer_earliest_post_across_queues() {
        // Deep posted queues: alternate specific and wildcard receives,
        // then deliver; each arrival must take the earliest-posted
        // accepting receive regardless of which FIFO it sits in.
        let mut e = MatchEngine::new();
        // posts: [Rank(1), Any, Rank(1), Any, ...] × 64
        for _ in 0..64 {
            assert!(e
                .on_post(recv(SrcSpec::Rank(Rank(1)), TagSpec::Any))
                .is_none());
            assert!(e.on_post(recv(SrcSpec::Any, TagSpec::Any)).is_none());
        }
        // Messages from rank 1 alternate between the specific and the
        // wildcard queue, in post order.
        for i in 0..128u64 {
            let (r, _) = e.on_arrival(msg(1, 0, i, i)).expect("must match");
            let want = if i % 2 == 0 {
                SrcSpec::Rank(Rank(1))
            } else {
                SrcSpec::Any
            };
            assert_eq!(r.src, want, "arrival {i}");
        }
        assert_eq!(e.posted_len(), 0);
    }

    /// Random op-sequence differential test: the per-channel engine must
    /// produce byte-identical match decisions to the flat reference
    /// engine, including queue contents at every step.
    #[test]
    fn differential_vs_flat_reference_engine() {
        for trial in 0..64u64 {
            let mut rng = SmallRng::seed_from_u64(0xC0FFEE ^ trial);
            let mut fast = MatchEngine::new();
            let mut slow = RefEngine::default();
            let world = 1 + (trial % 9) as u32; // 1..=9 source ranks
            let mut chan_seq = vec![0u64; world as usize];
            let mut parked: Vec<InFlightMsg> = Vec::new(); // oracle for force targets
            for step in 0..400u64 {
                if rng.gen_range(0..2) == 0 {
                    let src = rng.gen_range(0..world);
                    let tag = rng.gen_range(0..3);
                    let seq = chan_seq[src as usize];
                    chan_seq[src as usize] += 1;
                    let m = msg(src, tag, seq, step);
                    let a = fast.on_arrival(m.clone());
                    let b = slow.on_arrival(m.clone());
                    assert_eq!(a, b, "trial {trial} step {step}: arrival diverged");
                    if a.is_none() {
                        parked.push(m);
                    } else {
                        parked.retain(|p| !(p.src == m.src && p.seq == m.seq));
                    }
                } else {
                    let src = match rng.gen_range(0..3) {
                        0 => SrcSpec::Any,
                        _ => SrcSpec::Rank(Rank(rng.gen_range(0..world))),
                    };
                    let tag = match rng.gen_range(0..3) {
                        0 => TagSpec::Any,
                        _ => TagSpec::Tag(Tag(rng.gen_range(0..3))),
                    };
                    let mut r = recv(src, tag);
                    // Occasionally force a match onto a parked message.
                    if rng.gen_range(0..8) == 0 && !parked.is_empty() {
                        let target = &parked[rng.gen_range(0..parked.len())];
                        r.forced = Some((target.src, target.seq));
                    }
                    let a = fast.on_post(r.clone());
                    let b = slow.on_post(r);
                    assert_eq!(a, b, "trial {trial} step {step}: post diverged");
                    if let Some((_, m)) = &a {
                        parked.retain(|p| !(p.src == m.src && p.seq == m.seq));
                    }
                }
                assert_eq!(fast.unexpected_len(), slow.unexpected.len());
                assert_eq!(fast.posted_len(), slow.posted.len());
            }
            // Terminal states agree element-for-element, in order.
            let fast_left: Vec<_> = fast.drain_unexpected().collect();
            let slow_left: Vec<_> = slow.unexpected.drain(..).collect();
            assert_eq!(fast_left, slow_left, "trial {trial}: leftover messages");
            let fast_posted: Vec<_> = fast.posted_iter().cloned().collect();
            let slow_posted: Vec<_> = slow.posted.iter().cloned().collect();
            assert_eq!(fast_posted, slow_posted, "trial {trial}: leftover receives");
        }
    }
}
