//! MPI message-matching semantics.
//!
//! Each rank owns a [`MatchEngine`] holding the two canonical MPI queues:
//! the *unexpected-message queue* (messages that arrived before a matching
//! receive was posted, in arrival order) and the *posted-receive queue*
//! (receives not yet satisfied, in post order). Matching follows the MPI
//! standard:
//!
//! * when a message arrives, it is delivered to the **first posted** receive
//!   whose source/tag specification it satisfies;
//! * when a receive is posted, it consumes the **first arrived** matching
//!   message from the unexpected queue;
//! * messages on the same `(src, dst)` channel are matched in send order
//!   (non-overtaking). The engine guarantees this by clamping per-channel
//!   delivery times monotonically, so arrival order within a channel equals
//!   send order and the two scans above preserve it.
//!
//! A receive may carry a *forced match* constraint — the record/replay
//! mechanism (`crate::replay`) pins a wildcard receive to the exact message
//! it consumed in a recorded run.

use crate::types::{ChannelSeq, Rank, ReqSlot, SimTime, SrcSpec, Tag, TagSpec};
use std::collections::VecDeque;

/// A message travelling through (or parked at) the destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InFlightMsg {
    /// Sending rank.
    pub src: Rank,
    /// Destination rank.
    pub dst: Rank,
    /// Message tag.
    pub tag: Tag,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Position of this message on the `(src, dst)` channel.
    pub seq: ChannelSeq,
    /// Rank-local index of the send event that injected the message.
    pub send_event_idx: u32,
    /// Delivery time at the destination.
    pub arrival: SimTime,
    /// True for synchronous (`MPI_Ssend`) messages: the sender is blocked
    /// until this message is matched.
    pub sync: bool,
}

/// How a posted receive completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostKind {
    /// A blocking `MPI_Recv`; the rank is descheduled until it matches.
    Blocking,
    /// A nonblocking `MPI_Irecv` completing into the given request slot.
    Nonblocking(ReqSlot),
}

/// A receive waiting in the posted queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostedRecv {
    /// Source specification.
    pub src: SrcSpec,
    /// Tag specification.
    pub tag: TagSpec,
    /// Rank-local index of the receive's trace event (blocking receives
    /// only; nonblocking completions are emitted at the wait).
    pub event_idx: u32,
    /// Posting ordinal of the receive on its rank (record/replay key).
    pub ordinal: u32,
    /// Blocking or nonblocking completion.
    pub kind: PostKind,
    /// Local time at which the receive was posted.
    pub posted_at: SimTime,
    /// Replay constraint: only the message with this `(src, seq)` may match.
    pub forced: Option<(Rank, ChannelSeq)>,
}

impl PostedRecv {
    /// Does `msg` satisfy this receive (including any replay constraint)?
    #[inline]
    pub fn accepts(&self, msg: &InFlightMsg) -> bool {
        if !self.src.matches(msg.src) || !self.tag.matches(msg.tag) {
            return false;
        }
        match self.forced {
            Some((src, seq)) => msg.src == src && msg.seq == seq,
            None => true,
        }
    }
}

/// Per-destination matching state.
///
/// Determinism audit (schedule explorer prerequisite): both queues are
/// `VecDeque`s scanned front-to-back, so iteration order is insertion
/// order by construction — there is no hash-map (or other
/// iteration-order-unstable container) anywhere in the matching path, and
/// mid-queue removal via `remove(pos)` preserves the relative order of
/// the survivors. `Clone` is derived so the explorer can snapshot a
/// destination's matching state at each branch point.
#[derive(Debug, Default, Clone)]
pub struct MatchEngine {
    unexpected: VecDeque<InFlightMsg>,
    posted: VecDeque<PostedRecv>,
}

impl MatchEngine {
    /// An empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Handle a message arrival. Returns the satisfied receive paired with
    /// the message, or parks the message in the unexpected queue.
    pub fn on_arrival(&mut self, msg: InFlightMsg) -> Option<(PostedRecv, InFlightMsg)> {
        if let Some(pos) = self.posted.iter().position(|r| r.accepts(&msg)) {
            let recv = self.posted.remove(pos).expect("position is in range");
            Some((recv, msg))
        } else {
            self.unexpected.push_back(msg);
            None
        }
    }

    /// Handle a newly posted receive. Returns the receive paired with the
    /// matched message, or parks the receive in the posted queue.
    pub fn on_post(&mut self, recv: PostedRecv) -> Option<(PostedRecv, InFlightMsg)> {
        if let Some(pos) = self.unexpected.iter().position(|m| recv.accepts(m)) {
            let msg = self.unexpected.remove(pos).expect("position is in range");
            Some((recv, msg))
        } else {
            self.posted.push_back(recv);
            None
        }
    }

    /// Number of parked (arrived but unmatched) messages.
    pub fn unexpected_len(&self) -> usize {
        self.unexpected.len()
    }

    /// Number of posted-but-unsatisfied receives.
    pub fn posted_len(&self) -> usize {
        self.posted.len()
    }

    /// Drain parked messages (used for end-of-run diagnostics).
    pub fn drain_unexpected(&mut self) -> impl Iterator<Item = InFlightMsg> + '_ {
        self.unexpected.drain(..)
    }

    /// Iterate over posted-but-unsatisfied receives (deadlock diagnostics).
    pub fn posted_iter(&self) -> impl Iterator<Item = &PostedRecv> {
        self.posted.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: u32, tag: i32, seq: u64, arrival: u64) -> InFlightMsg {
        InFlightMsg {
            src: Rank(src),
            dst: Rank(0),
            tag: Tag(tag),
            bytes: 8,
            seq: ChannelSeq(seq),
            send_event_idx: 0,
            arrival: SimTime(arrival),
            sync: false,
        }
    }

    fn recv(src: SrcSpec, tag: TagSpec) -> PostedRecv {
        PostedRecv {
            src,
            tag,
            event_idx: 0,
            ordinal: 0,
            kind: PostKind::Blocking,
            posted_at: SimTime::ZERO,
            forced: None,
        }
    }

    #[test]
    fn arrival_matches_first_posted() {
        let mut e = MatchEngine::new();
        assert!(e
            .on_post(recv(SrcSpec::Rank(Rank(9)), TagSpec::Any))
            .is_none());
        assert!(e.on_post(recv(SrcSpec::Any, TagSpec::Any)).is_none());
        let (r, m) = e.on_arrival(msg(1, 0, 0, 10)).expect("must match");
        // First posted receive is src-specific and does not accept rank 1;
        // the wildcard (second posted) wins.
        assert_eq!(r.src, SrcSpec::Any);
        assert_eq!(m.src, Rank(1));
        assert_eq!(e.posted_len(), 1);
    }

    #[test]
    fn post_matches_earliest_arrival() {
        let mut e = MatchEngine::new();
        assert!(e.on_arrival(msg(2, 0, 0, 20)).is_none());
        assert!(e.on_arrival(msg(1, 0, 0, 30)).is_none());
        let (_, m) = e
            .on_post(recv(SrcSpec::Any, TagSpec::Any))
            .expect("must match");
        assert_eq!(m.src, Rank(2), "earliest arrival wins");
        assert_eq!(e.unexpected_len(), 1);
    }

    #[test]
    fn tag_filtering() {
        let mut e = MatchEngine::new();
        e.on_arrival(msg(1, 7, 0, 10));
        assert!(e
            .on_post(recv(SrcSpec::Any, TagSpec::Tag(Tag(8))))
            .is_none());
        let got = e.on_post(recv(SrcSpec::Any, TagSpec::Tag(Tag(7))));
        assert!(got.is_some());
    }

    #[test]
    fn forced_match_skips_other_messages() {
        let mut e = MatchEngine::new();
        e.on_arrival(msg(1, 0, 0, 10));
        e.on_arrival(msg(2, 0, 0, 11));
        let mut r = recv(SrcSpec::Any, TagSpec::Any);
        r.forced = Some((Rank(2), ChannelSeq(0)));
        let (_, m) = e.on_post(r).expect("forced message is present");
        assert_eq!(m.src, Rank(2));
        assert_eq!(e.unexpected_len(), 1);
    }

    #[test]
    fn forced_match_blocks_until_target_arrives() {
        let mut e = MatchEngine::new();
        let mut r = recv(SrcSpec::Any, TagSpec::Any);
        r.forced = Some((Rank(2), ChannelSeq(1)));
        assert!(e.on_post(r).is_none());
        // A non-target message parks.
        assert!(e.on_arrival(msg(2, 0, 0, 5)).is_none());
        assert_eq!(e.unexpected_len(), 1);
        // The target matches.
        let got = e.on_arrival(msg(2, 0, 1, 6));
        assert!(got.is_some());
    }

    #[test]
    fn channel_order_preserved_within_channel() {
        // Two messages from the same source; the earlier-arriving (lower
        // seq, by engine clamping) must match the first wildcard receive.
        let mut e = MatchEngine::new();
        e.on_arrival(msg(1, 0, 0, 10));
        e.on_arrival(msg(1, 0, 1, 12));
        let (_, m1) = e.on_post(recv(SrcSpec::Any, TagSpec::Any)).unwrap();
        let (_, m2) = e.on_post(recv(SrcSpec::Any, TagSpec::Any)).unwrap();
        assert_eq!(m1.seq, ChannelSeq(0));
        assert_eq!(m2.seq, ChannelSeq(1));
    }

    #[test]
    fn drain_unexpected_reports_leftovers() {
        let mut e = MatchEngine::new();
        e.on_arrival(msg(1, 0, 0, 10));
        e.on_arrival(msg(2, 0, 0, 11));
        let left: Vec<_> = e.drain_unexpected().collect();
        assert_eq!(left.len(), 2);
        assert_eq!(e.unexpected_len(), 0);
    }

    #[test]
    fn mid_queue_removal_preserves_scan_order() {
        // Regression for the determinism audit: consuming an element from
        // the middle of either queue must leave the remaining elements in
        // their original relative order, or replay and exploration would
        // silently diverge from free runs.
        let mut e = MatchEngine::new();
        e.on_arrival(msg(1, 1, 0, 10));
        e.on_arrival(msg(2, 2, 0, 11));
        e.on_arrival(msg(3, 3, 0, 12));
        // Take the middle message (tag 2) out of the unexpected queue…
        let (_, m) = e.on_post(recv(SrcSpec::Any, TagSpec::Tag(Tag(2)))).unwrap();
        assert_eq!(m.src, Rank(2));
        // …then wildcard posts must still see 1 before 3.
        let (_, a) = e.on_post(recv(SrcSpec::Any, TagSpec::Any)).unwrap();
        let (_, b) = e.on_post(recv(SrcSpec::Any, TagSpec::Any)).unwrap();
        assert_eq!((a.src, b.src), (Rank(1), Rank(3)));

        // Same property for the posted queue: match the middle receive…
        let mut e = MatchEngine::new();
        assert!(e
            .on_post(recv(SrcSpec::Rank(Rank(1)), TagSpec::Any))
            .is_none());
        assert!(e
            .on_post(recv(SrcSpec::Rank(Rank(2)), TagSpec::Any))
            .is_none());
        assert!(e.on_post(recv(SrcSpec::Any, TagSpec::Any)).is_none());
        let (r, _) = e.on_arrival(msg(2, 0, 0, 5)).unwrap();
        assert_eq!(r.src, SrcSpec::Rank(Rank(2)));
        // …and an untargeted message must still prefer the earlier post.
        let (r, _) = e.on_arrival(msg(1, 0, 0, 6)).unwrap();
        assert_eq!(r.src, SrcSpec::Rank(Rank(1)));
        assert_eq!(e.posted_len(), 1);
    }

    #[test]
    fn cloned_engine_is_independent_and_identical() {
        let mut e = MatchEngine::new();
        e.on_arrival(msg(1, 0, 0, 10));
        assert!(e
            .on_post(recv(SrcSpec::Any, TagSpec::Tag(Tag(9))))
            .is_none());
        let mut snap = e.clone();
        assert_eq!(snap.unexpected_len(), e.unexpected_len());
        assert_eq!(snap.posted_len(), e.posted_len());
        // Mutating the clone leaves the original untouched.
        let got = snap.on_post(recv(SrcSpec::Any, TagSpec::Any));
        assert!(got.is_some());
        assert_eq!(snap.unexpected_len(), 0);
        assert_eq!(e.unexpected_len(), 1);
    }

    #[test]
    fn accepts_respects_src_and_tag_and_force() {
        let m = msg(3, 5, 2, 0);
        let mut r = recv(SrcSpec::Rank(Rank(3)), TagSpec::Tag(Tag(5)));
        assert!(r.accepts(&m));
        r.forced = Some((Rank(3), ChannelSeq(2)));
        assert!(r.accepts(&m));
        r.forced = Some((Rank(3), ChannelSeq(3)));
        assert!(!r.accepts(&m));
        let r2 = recv(SrcSpec::Rank(Rank(4)), TagSpec::Any);
        assert!(!r2.accepts(&m));
    }
}
