//! # anacin-mpisim
//!
//! A discrete-event simulator of MPI point-to-point semantics, built as the
//! execution substrate for the `anacin-rs` reproduction of ANACIN-X (Bell
//! et al., *A Research-Based Course Module to Study Non-determinism in High
//! Performance Applications*, IPPS 2022).
//!
//! The paper's experiments need exactly three things from an MPI platform:
//!
//! 1. **Standard matching semantics** — wildcard receives
//!    (`MPI_ANY_SOURCE`/`MPI_ANY_TAG`) match messages in arrival order,
//!    specific receives match their channel in send order (non-overtaking).
//! 2. **A non-determinism knob** — "the percentage of messages that can
//!    suffer from congestion or contention delays" (paper, §III-C1); here
//!    [`network::NetworkConfig::nd_fraction`].
//! 3. **Traces with call paths** — every event is attributed to the call
//!    path that issued it, enabling root-cause analysis.
//!
//! The simulator is deterministic for a given seed: a *run* of an
//! application is `simulate(program, config-with-seed)`. Sampling many
//! seeds reproduces the paper's "run the application many times" campaigns
//! on a laptop, with perfect reproducibility.
//!
//! ## Example
//!
//! ```
//! use anacin_mpisim::prelude::*;
//!
//! // A 4-process message race: ranks 1..3 all send to rank 0, which posts
//! // wildcard receives — the paper's Figure 2 pattern.
//! let mut b = ProgramBuilder::new(4);
//! for r in 1..4 {
//!     b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
//! }
//! for _ in 1..4 {
//!     b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
//! }
//! let program = b.build();
//!
//! // Deterministic network: every run identical.
//! let t = simulate(&program, &SimConfig::deterministic()).unwrap();
//! assert_eq!(t.meta.messages, 3);
//!
//! // 100% non-determinism: match order varies across seeds.
//! let t1 = simulate(&program, &SimConfig::with_nd_percent(100.0, 1)).unwrap();
//! let t2 = simulate(&program, &SimConfig::with_nd_percent(100.0, 1)).unwrap();
//! assert_eq!(t1.match_order(Rank(0)), t2.match_order(Rank(0))); // same seed
//! ```

#![warn(missing_docs)]

pub mod artifact;
pub mod collectives;
pub mod counters;
pub mod engine;
pub mod explore;
pub mod matching;
pub mod network;
pub mod ops;
pub mod program;
pub mod replay;
pub mod stack;
pub mod timeline;
pub mod trace;
pub mod types;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::counters::SimCounters;
    pub use crate::engine::{
        simulate, simulate_counted, simulate_replay, simulate_traced, simulate_traced_counted,
        SimConfig, SimError,
    };
    pub use crate::explore::{
        explore, explore_observed, simulate_scheduled, ExploreConfig, ExploreReport, ExploreStats,
        Schedule, ScheduleId,
    };
    pub use crate::network::{DelayDistribution, NetworkConfig};
    pub use crate::program::{BalanceError, Program, ProgramBuilder, RequestError};
    pub use crate::replay::MatchRecord;
    pub use crate::stack::{CallStack, CallStackId, CallStackTable};
    pub use crate::timeline::{Activity, Segment, Timeline};
    pub use crate::trace::{EventId, EventKind, Trace, TraceEvent};
    pub use crate::types::{Rank, SimTime, SrcSpec, Tag, TagSpec};
}

pub use counters::SimCounters;
pub use engine::{
    simulate, simulate_counted, simulate_replay, simulate_traced, simulate_traced_counted,
    SimConfig, SimError,
};
pub use program::{Program, ProgramBuilder};
pub use trace::Trace;
