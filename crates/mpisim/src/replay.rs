//! Record-and-replay of message-matching decisions.
//!
//! This module implements the technique the paper's related work attributes
//! to ReMPI (Sato et al., SC'15): record the outcome of every wildcard
//! receive in one run, then *force* those outcomes in subsequent runs,
//! suppressing communication non-determinism entirely. The course module
//! uses it to demonstrate that once match order is pinned, the kernel
//! distance between runs collapses to zero even at 100% injected ND.
//!
//! A [`MatchRecord`] stores, for each rank and each receive (in program
//! order), the `(source rank, channel sequence)` of the matched message.
//! [`crate::engine::simulate_replay`] consults it when posting receives.

use crate::trace::{EventKind, Trace};
use crate::types::{ChannelSeq, Rank};
use serde::{Deserialize, Serialize};

/// Recorded matching decisions of one run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchRecord {
    /// `decisions[rank][post_ordinal]` is the matched `(src, seq)` of the
    /// receive posted `post_ordinal`-th on `rank`. Non-wildcard receives
    /// are recorded too (they keep ordinals aligned) but are not enforced
    /// on replay. `None` marks ordinals whose receive never completed.
    decisions: Vec<Vec<Option<(Rank, ChannelSeq)>>>,
}

impl MatchRecord {
    /// Extract the matching decisions from a completed trace, keyed by
    /// posting ordinal (event order and posting order differ for
    /// nonblocking receives).
    pub fn from_trace(trace: &Trace) -> Self {
        let mut decisions: Vec<Vec<Option<(Rank, ChannelSeq)>>> =
            vec![Vec::new(); trace.world_size() as usize];
        for r in 0..trace.world_size() {
            let rank = Rank(r);
            for ev in trace.rank_events(rank) {
                if let EventKind::Recv {
                    src,
                    seq,
                    post_ordinal,
                    ..
                } = ev.kind
                {
                    let d = &mut decisions[rank.index()];
                    if d.len() <= post_ordinal as usize {
                        d.resize(post_ordinal as usize + 1, None);
                    }
                    d[post_ordinal as usize] = Some((src, seq));
                }
            }
        }
        MatchRecord { decisions }
    }

    /// Build a record directly from decision vectors (the schedule
    /// explorer's path from an enumerated schedule back into the engine).
    pub(crate) fn from_decisions(decisions: Vec<Vec<Option<(Rank, ChannelSeq)>>>) -> Self {
        MatchRecord { decisions }
    }

    /// The raw decision vectors (schedule fingerprinting).
    pub(crate) fn into_decisions(self) -> Vec<Vec<Option<(Rank, ChannelSeq)>>> {
        self.decisions
    }

    /// The decision for the receive posted `ordinal`-th by `rank`, if
    /// recorded.
    pub fn matched(&self, rank: Rank, ordinal: usize) -> Option<(Rank, ChannelSeq)> {
        self.decisions
            .get(rank.index())
            .and_then(|v| v.get(ordinal))
            .copied()
            .flatten()
    }

    /// Number of recorded receives on `rank`.
    pub fn recv_count(&self, rank: Rank) -> usize {
        self.decisions
            .get(rank.index())
            .map(|v| v.iter().filter(|d| d.is_some()).count())
            .unwrap_or(0)
    }

    /// Total recorded receives.
    pub fn total(&self) -> usize {
        self.decisions
            .iter()
            .map(|v| v.iter().filter(|d| d.is_some()).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, simulate_replay, SimConfig};
    use crate::program::{Program, ProgramBuilder};
    use crate::types::{Tag, TagSpec};

    fn message_race(n: u32) -> Program {
        let mut b = ProgramBuilder::new(n);
        for r in 1..n {
            b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
        }
        for _ in 1..n {
            b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
        }
        b.build()
    }

    #[test]
    fn record_extracts_all_receives() {
        let p = message_race(5);
        let t = simulate(&p, &SimConfig::with_nd_percent(100.0, 1)).unwrap();
        let rec = MatchRecord::from_trace(&t);
        assert_eq!(rec.recv_count(Rank(0)), 4);
        assert_eq!(rec.total(), 4);
        assert_eq!(
            rec.matched(Rank(0), 0).unwrap().0,
            t.match_order(Rank(0))[0]
        );
        assert!(rec.matched(Rank(0), 99).is_none());
        assert!(rec.matched(Rank(4), 0).is_none());
    }

    #[test]
    fn replay_pins_match_order_across_seeds() {
        let p = message_race(8);
        // Record under one seed.
        let recorded = simulate(&p, &SimConfig::with_nd_percent(100.0, 11)).unwrap();
        let rec = MatchRecord::from_trace(&recorded);
        let want = recorded.match_order(Rank(0));
        // Replaying under many different seeds (fresh delay draws!) must
        // reproduce the recorded match order every time.
        for seed in 0..15 {
            let t = simulate_replay(&p, &SimConfig::with_nd_percent(100.0, seed), &rec).unwrap();
            assert_eq!(t.match_order(Rank(0)), want, "seed {seed} diverged");
            t.validate().unwrap();
        }
    }

    #[test]
    fn free_runs_do_diverge_where_replay_does_not() {
        // Companion to the test above: without replay the same seeds give
        // multiple distinct orders, proving replay is doing the work.
        let p = message_race(8);
        let mut free_orders = std::collections::HashSet::new();
        for seed in 0..15 {
            let t = simulate(&p, &SimConfig::with_nd_percent(100.0, seed)).unwrap();
            free_orders.insert(t.match_order(Rank(0)));
        }
        assert!(free_orders.len() > 1);
    }

    #[test]
    fn replay_of_deterministic_run_is_noop() {
        let p = message_race(4);
        let base = simulate(&p, &SimConfig::deterministic()).unwrap();
        let rec = MatchRecord::from_trace(&base);
        let t = simulate_replay(&p, &SimConfig::deterministic(), &rec).unwrap();
        assert_eq!(t.match_order(Rank(0)), base.match_order(Rank(0)));
    }

    #[test]
    fn record_roundtrips_through_serde_and_forces_identical_matching() {
        // A wildcard-heavy program: every receive on rank 0 is nonblocking
        // ANY_SOURCE/ANY_TAG, waited out of posting order, so the record is
        // carrying real racing decisions, not deterministic filler.
        let n = 7u32;
        let mut b = ProgramBuilder::new(n);
        for r in 1..n {
            b.rank(Rank(r)).send(Rank(0), Tag(r as i32 % 3), 1);
        }
        {
            let mut r0 = b.rank(Rank(0));
            let reqs: Vec<_> = (1..n).map(|_| r0.irecv_any(TagSpec::Any)).collect();
            for req in reqs.into_iter().rev() {
                r0.wait(req);
            }
        }
        let p = b.build();
        let recorded = simulate(&p, &SimConfig::with_nd_percent(100.0, 9)).unwrap();
        assert_eq!(recorded.wildcard_recv_count(), (n - 1) as usize);
        let rec = MatchRecord::from_trace(&recorded);

        // The record must survive a serialize/deserialize round trip…
        let json = serde_json::to_string(&rec).unwrap();
        let back: MatchRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(rec, back);

        // …and the deserialized copy must force the recorded matching on
        // replay, exactly as the in-memory original does.
        for seed in 40..50 {
            let from_orig =
                simulate_replay(&p, &SimConfig::with_nd_percent(100.0, seed), &rec).unwrap();
            let from_back =
                simulate_replay(&p, &SimConfig::with_nd_percent(100.0, seed), &back).unwrap();
            assert_eq!(
                from_orig.match_order(Rank(0)),
                recorded.match_order(Rank(0))
            );
            assert_eq!(
                from_back.match_order(Rank(0)),
                recorded.match_order(Rank(0))
            );
            for ((_, a), (_, b)) in from_orig.iter().zip(from_back.iter()) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn replay_with_nonblocking_receives() {
        let n = 6u32;
        let mut b = ProgramBuilder::new(n);
        for r in 1..n {
            b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
        }
        {
            let mut r0 = b.rank(Rank(0));
            let reqs: Vec<_> = (1..n).map(|_| r0.irecv_any(TagSpec::Any)).collect();
            r0.waitall(reqs);
        }
        let p = b.build();
        let recorded = simulate(&p, &SimConfig::with_nd_percent(100.0, 3)).unwrap();
        let rec = MatchRecord::from_trace(&recorded);
        for seed in 20..30 {
            let t = simulate_replay(&p, &SimConfig::with_nd_percent(100.0, seed), &rec).unwrap();
            assert_eq!(t.match_order(Rank(0)), recorded.match_order(Rank(0)));
        }
    }
}
