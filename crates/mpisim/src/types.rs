//! Fundamental identifier and time types shared across the simulator.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An MPI process identifier (a *rank*).
///
/// Ranks are dense integers in `0..world_size`, exactly as in MPI's
/// `MPI_COMM_WORLD`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rank(pub u32);

impl Rank {
    /// The rank as a `usize`, for indexing per-rank tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank {}", self.0)
    }
}

/// An MPI message tag.
///
/// Non-negative values are user tags; matching against [`TagSpec::Any`]
/// mirrors `MPI_ANY_TAG`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tag(pub i32);

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag {}", self.0)
    }
}

/// Source specification of a receive: a concrete rank or `MPI_ANY_SOURCE`.
///
/// Wildcard receives are the fundamental enabler of message races and
/// therefore of communication non-determinism (Cappello et al., ICCCN'10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SrcSpec {
    /// Match only messages sent by this rank.
    Rank(Rank),
    /// Match a message from any sender (`MPI_ANY_SOURCE`).
    Any,
}

impl SrcSpec {
    /// Does a message from `src` satisfy this specification?
    #[inline]
    pub fn matches(self, src: Rank) -> bool {
        match self {
            SrcSpec::Rank(r) => r == src,
            SrcSpec::Any => true,
        }
    }

    /// True when this is the `MPI_ANY_SOURCE` wildcard.
    #[inline]
    pub fn is_wildcard(self) -> bool {
        matches!(self, SrcSpec::Any)
    }
}

impl From<Rank> for SrcSpec {
    fn from(r: Rank) -> Self {
        SrcSpec::Rank(r)
    }
}

/// Tag specification of a receive: a concrete tag or `MPI_ANY_TAG`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TagSpec {
    /// Match only messages carrying this tag.
    Tag(Tag),
    /// Match any tag (`MPI_ANY_TAG`).
    Any,
}

impl TagSpec {
    /// Does a message with tag `tag` satisfy this specification?
    #[inline]
    pub fn matches(self, tag: Tag) -> bool {
        match self {
            TagSpec::Tag(t) => t == tag,
            TagSpec::Any => true,
        }
    }

    /// True when this is the `MPI_ANY_TAG` wildcard.
    #[inline]
    pub fn is_wildcard(self) -> bool {
        matches!(self, TagSpec::Any)
    }
}

impl From<Tag> for TagSpec {
    fn from(t: Tag) -> Self {
        TagSpec::Tag(t)
    }
}

/// Simulated time in nanoseconds since the start of the execution.
///
/// `SimTime` is a logical clock driven by the discrete-event engine; it has
/// no relation to wall-clock time. Saturating arithmetic keeps pathological
/// configurations from panicking.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero: the instant every rank calls `init`.
    pub const ZERO: SimTime = SimTime(0);

    /// The time in nanoseconds.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// This time advanced by `ns` nanoseconds (saturating).
    #[inline]
    pub fn after(self, ns: u64) -> SimTime {
        SimTime(self.0.saturating_add(ns))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

/// A per-channel message sequence number.
///
/// Each ordered pair of ranks `(src, dst)` forms a *channel*; sends on a
/// channel are numbered `0, 1, 2, …` in program order. The engine uses
/// these numbers to enforce MPI's non-overtaking rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelSeq(pub u64);

/// A slot in a rank's nonblocking-request table, as returned by
/// `isend`/`irecv` and consumed by `wait`/`waitall`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReqSlot(pub u32);

impl ReqSlot {
    /// The slot as a `usize`, for indexing the request table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn src_spec_matching() {
        assert!(SrcSpec::Any.matches(Rank(3)));
        assert!(SrcSpec::Rank(Rank(3)).matches(Rank(3)));
        assert!(!SrcSpec::Rank(Rank(3)).matches(Rank(4)));
        assert!(SrcSpec::Any.is_wildcard());
        assert!(!SrcSpec::Rank(Rank(0)).is_wildcard());
    }

    #[test]
    fn tag_spec_matching() {
        assert!(TagSpec::Any.matches(Tag(17)));
        assert!(TagSpec::Tag(Tag(17)).matches(Tag(17)));
        assert!(!TagSpec::Tag(Tag(17)).matches(Tag(18)));
        assert!(TagSpec::Any.is_wildcard());
    }

    #[test]
    fn sim_time_arithmetic() {
        let t = SimTime(100);
        assert_eq!(t.after(50), SimTime(150));
        assert_eq!(t.max(SimTime(120)), SimTime(120));
        assert_eq!(SimTime(u64::MAX).after(1), SimTime(u64::MAX));
        assert_eq!(SimTime::ZERO.nanos(), 0);
    }

    #[test]
    fn conversions() {
        let s: SrcSpec = Rank(2).into();
        assert_eq!(s, SrcSpec::Rank(Rank(2)));
        let t: TagSpec = Tag(9).into();
        assert_eq!(t, TagSpec::Tag(Tag(9)));
        assert_eq!(Rank(7).index(), 7);
        assert_eq!(ReqSlot(5).index(), 5);
    }

    #[test]
    fn display_impls() {
        assert_eq!(Rank(1).to_string(), "rank 1");
        assert_eq!(Tag(5).to_string(), "tag 5");
        assert_eq!(SimTime(42).to_string(), "42ns");
    }
}
