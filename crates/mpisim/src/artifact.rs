//! Store codec for [`Trace`]: the `anacin_store::Artifact`
//! implementation.
//!
//! Lives in this crate (not `crates/store`) because trace assembly is
//! `pub(crate)`: the decoder rebuilds a [`Trace`] through
//! [`Trace::new`], and the call-stack table through its public interning
//! API — ids are assigned densely in interning order, so re-interning the
//! stored paths in table order reproduces every id exactly.
//!
//! The encoding is canonical: a trace has exactly one byte representation
//! (event lists are already ordered; the stack table is written in id
//! order), which is what lets warm store reads be bit-identical to cold
//! recomputation.

use crate::stack::{CallStack, CallStackId, CallStackTable};
use crate::trace::{EventId, EventKind, Trace, TraceEvent, TraceMeta};
use crate::types::{ChannelSeq, Rank, SimTime, Tag};
use anacin_store::{Artifact, ArtifactKind, ByteReader, ByteWriter, WireError};

const TAG_INIT: u8 = 0;
const TAG_FINALIZE: u8 = 1;
const TAG_SEND: u8 = 2;
const TAG_RECV: u8 = 3;

fn encode_event(e: &TraceEvent, w: &mut ByteWriter) {
    match &e.kind {
        EventKind::Init => w.u8(TAG_INIT),
        EventKind::Finalize => w.u8(TAG_FINALIZE),
        EventKind::Send {
            dst,
            tag,
            bytes,
            seq,
        } => {
            w.u8(TAG_SEND);
            w.u32(dst.0);
            w.i32(tag.0);
            w.u64(*bytes);
            w.u64(seq.0);
        }
        EventKind::Recv {
            src,
            tag,
            bytes,
            send_event,
            seq,
            wildcard,
            post_ordinal,
        } => {
            w.u8(TAG_RECV);
            w.u32(src.0);
            w.i32(tag.0);
            w.u64(*bytes);
            w.u32(send_event.rank.0);
            w.u32(send_event.idx);
            w.u64(seq.0);
            w.bool(*wildcard);
            w.u32(*post_ordinal);
        }
    }
    w.u64(e.time.0);
    w.u32(e.stack.0);
}

fn decode_event(r: &mut ByteReader<'_>) -> Result<TraceEvent, WireError> {
    let kind = match r.u8()? {
        TAG_INIT => EventKind::Init,
        TAG_FINALIZE => EventKind::Finalize,
        TAG_SEND => EventKind::Send {
            dst: Rank(r.u32()?),
            tag: Tag(r.i32()?),
            bytes: r.u64()?,
            seq: ChannelSeq(r.u64()?),
        },
        TAG_RECV => EventKind::Recv {
            src: Rank(r.u32()?),
            tag: Tag(r.i32()?),
            bytes: r.u64()?,
            send_event: EventId::new(Rank(r.u32()?), r.u32()?),
            seq: ChannelSeq(r.u64()?),
            wildcard: r.bool()?,
            post_ordinal: r.u32()?,
        },
        t => return Err(WireError::BadTag(t)),
    };
    Ok(TraceEvent {
        kind,
        time: SimTime(r.u64()?),
        stack: CallStackId(r.u32()?),
    })
}

impl Artifact for Trace {
    const KIND: ArtifactKind = ArtifactKind::Trace;

    fn encode_into(&self, w: &mut ByteWriter) {
        w.u32(self.world_size());
        // Stack table in id order; id 0 is always the unknown path.
        let stacks = self.stacks();
        w.seq_len(stacks.len());
        for (_, stack) in stacks.iter() {
            w.seq_len(stack.depth());
            for frame in stack.frames() {
                w.str(frame);
            }
        }
        for rank in 0..self.world_size() {
            let events = self.rank_events(Rank(rank));
            w.seq_len(events.len());
            for e in events {
                encode_event(e, w);
            }
        }
        let m = &self.meta;
        w.u64(m.seed);
        w.f64(m.nd_fraction);
        w.u32(m.nodes);
        w.u64(m.makespan.0);
        w.u64(m.messages);
        w.u64(m.unmatched_messages);
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let world_size = r.u32()?;
        let n_stacks = r.seq_len(8)?;
        let mut stacks = CallStackTable::new();
        for i in 0..n_stacks {
            let depth = r.seq_len(8)?;
            let mut frames = Vec::with_capacity(depth);
            for _ in 0..depth {
                frames.push(r.str()?);
            }
            let id = stacks.intern(CallStack::new(frames));
            if id.index() != i {
                // A valid encoding writes a dense, duplicate-free table;
                // anything else is payload damage the checksum missed.
                return Err(WireError::BadTag(id.0 as u8));
            }
        }
        // The wire layout is rank-major, so the arena can be filled
        // directly — no per-rank `Vec<Vec<_>>` staging.
        let mut events = Vec::new();
        let mut offsets = Vec::with_capacity(world_size as usize + 1);
        offsets.push(0u64);
        for _ in 0..world_size {
            let n = r.seq_len(13)?;
            events.reserve(n);
            for _ in 0..n {
                events.push(decode_event(r)?);
            }
            offsets.push(events.len() as u64);
        }
        let meta = TraceMeta {
            seed: r.u64()?,
            nd_fraction: r.f64()?,
            nodes: r.u32()?,
            makespan: SimTime(r.u64()?),
            messages: r.u64()?,
            unmatched_messages: r.u64()?,
        };
        Ok(Trace::from_flat(world_size, events, offsets, stacks, meta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::program::ProgramBuilder;
    use crate::types::TagSpec;

    fn traced_run(seed: u64) -> Trace {
        let mut b = ProgramBuilder::new(4);
        for r in 1..4 {
            b.rank(Rank(r)).scoped("exchange", |rb| {
                rb.send(Rank(0), Tag(0), 64);
            });
        }
        for _ in 1..4 {
            b.rank(Rank(0)).scoped("collect", |rb| {
                rb.recv_any(TagSpec::Any);
            });
        }
        simulate(&b.build(), &SimConfig::with_nd_percent(100.0, seed)).unwrap()
    }

    #[test]
    fn trace_round_trips_bit_exactly() {
        for seed in 0..5 {
            let t = traced_run(seed);
            let bytes = t.to_wire();
            let back = Trace::from_wire(&bytes).unwrap();
            assert_eq!(back, t, "seed {seed}");
            // Canonical: re-encoding the decode yields identical bytes.
            assert_eq!(back.to_wire(), bytes, "seed {seed}");
        }
    }

    #[test]
    fn decoded_trace_table_reinterns_to_same_ids() {
        let t = traced_run(1);
        let back = Trace::from_wire(&t.to_wire()).unwrap();
        // Every stored id resolves to the same path as in the original.
        for (id, stack) in t.stacks().iter() {
            assert_eq!(back.stacks().resolve(id), stack);
        }
        // The decoded table's lookup index is live: re-interning an
        // existing path returns its original id without growing the table.
        let (last_id, last_stack) = t.stacks().iter().last().unwrap();
        let last_stack = last_stack.clone();
        let mut table = back.stacks().clone();
        let before = table.len();
        assert_eq!(table.intern(last_stack), last_id);
        assert_eq!(table.len(), before);
    }

    #[test]
    fn truncated_trace_fails_to_decode() {
        let t = traced_run(0);
        let bytes = t.to_wire();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Trace::from_wire(&bytes[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn validate_passes_after_round_trip() {
        let t = traced_run(3);
        let back = Trace::from_wire(&t.to_wire()).unwrap();
        assert_eq!(back.validate(), t.validate());
        assert_eq!(back.match_order(Rank(0)), t.match_order(Rank(0)));
    }
}
