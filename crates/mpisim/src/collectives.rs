//! Collective operations built on point-to-point messages.
//!
//! The paper scopes ANACIN-X to one-to-one MPI calls and names collectives
//! as future work; this module implements that extension. Every collective
//! is expressed purely as `send`/`recv` ops added to a [`ProgramBuilder`],
//! so the rest of the toolchain (tracing, event graphs, kernels) works on
//! collective traffic unchanged. Each collective pushes an identifying
//! context frame (`MPI_Barrier`, `MPI_Bcast`, …) so call-path analysis can
//! attribute its traffic.
//!
//! Algorithms are the textbook ones: dissemination barrier, binomial-tree
//! broadcast and reduce, and allreduce as reduce-then-broadcast (correct
//! for any rank count, including non-powers of two).

use crate::program::ProgramBuilder;
use crate::types::{Rank, Tag};

/// Tags used by collectives are offset into a reserved space so user tags
/// (small non-negative integers) never collide with them.
const COLLECTIVE_TAG_BASE: i32 = 1 << 20;

fn round_tag(base: i32, round: u32) -> Tag {
    Tag(COLLECTIVE_TAG_BASE + base + round as i32)
}

fn ceil_log2(n: u32) -> u32 {
    debug_assert!(n > 0);
    32 - (n - 1).leading_zeros()
}

/// Append a dissemination barrier across all ranks.
///
/// `instance` disambiguates tags when a program contains several barriers.
pub fn barrier(b: &mut ProgramBuilder, world_size: u32, instance: i32) {
    if world_size <= 1 {
        return;
    }
    let rounds = ceil_log2(world_size);
    for k in 0..rounds {
        let stride = 1u32 << k;
        for r in 0..world_size {
            let to = Rank((r + stride) % world_size);
            let from = Rank((r + world_size - stride % world_size) % world_size);
            let mut rb = b.rank(Rank(r));
            rb.push_frame("MPI_Barrier");
            rb.send(to, round_tag(instance * 64, k), 0);
            rb.recv(from, round_tag(instance * 64, k).into());
            rb.pop_frame();
        }
    }
}

/// Append a binomial-tree broadcast of `bytes` bytes from `root`.
pub fn broadcast(b: &mut ProgramBuilder, world_size: u32, root: Rank, bytes: u64, instance: i32) {
    if world_size <= 1 {
        return;
    }
    let rounds = ceil_log2(world_size);
    for k in 0..rounds {
        let stride = 1u32 << k;
        for r in 0..world_size {
            // Work in root-relative coordinates.
            let rel = (r + world_size - root.0 % world_size) % world_size;
            let tag = round_tag(instance * 64 + 16, k);
            if rel < stride && rel + stride < world_size {
                let dst = Rank((r + stride) % world_size);
                let mut rb = b.rank(Rank(r));
                rb.push_frame("MPI_Bcast");
                rb.send(dst, tag, bytes);
                rb.pop_frame();
            } else if rel >= stride && rel < 2 * stride {
                let src = Rank((r + world_size - stride % world_size) % world_size);
                let mut rb = b.rank(Rank(r));
                rb.push_frame("MPI_Bcast");
                rb.recv(src, tag.into());
                rb.pop_frame();
            }
        }
    }
}

/// Append a binomial-tree reduction of `bytes` bytes to `root`.
pub fn reduce(b: &mut ProgramBuilder, world_size: u32, root: Rank, bytes: u64, instance: i32) {
    if world_size <= 1 {
        return;
    }
    let rounds = ceil_log2(world_size);
    // Reverse of the broadcast tree: leaves send first.
    for k in (0..rounds).rev() {
        let stride = 1u32 << k;
        for r in 0..world_size {
            let rel = (r + world_size - root.0 % world_size) % world_size;
            let tag = round_tag(instance * 64 + 32, k);
            if rel >= stride && rel < 2 * stride {
                let dst = Rank((r + world_size - stride % world_size) % world_size);
                let mut rb = b.rank(Rank(r));
                rb.push_frame("MPI_Reduce");
                rb.send(dst, tag, bytes);
                rb.pop_frame();
            } else if rel < stride && rel + stride < world_size {
                let src = Rank((r + stride) % world_size);
                let mut rb = b.rank(Rank(r));
                rb.push_frame("MPI_Reduce");
                rb.recv(src, tag.into());
                rb.pop_frame();
            }
        }
    }
}

/// Append an allreduce (reduce to rank 0, then broadcast from rank 0).
pub fn allreduce(b: &mut ProgramBuilder, world_size: u32, bytes: u64, instance: i32) {
    reduce(b, world_size, Rank(0), bytes, instance * 2 + 1);
    broadcast(b, world_size, Rank(0), bytes, instance * 2 + 2);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::types::SimTime;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
    }

    fn run_ok(world: u32, f: impl Fn(&mut ProgramBuilder, u32)) {
        let mut b = ProgramBuilder::new(world);
        f(&mut b, world);
        let p = b.build();
        p.check_balance()
            .unwrap_or_else(|e| panic!("world {world}: {e}"));
        let t = simulate(&p, &SimConfig::deterministic())
            .unwrap_or_else(|e| panic!("world {world}: {e}"));
        assert_eq!(t.meta.unmatched_messages, 0, "world {world}");
        t.validate().unwrap();
    }

    #[test]
    fn barrier_completes_for_many_sizes() {
        for n in [2, 3, 4, 5, 7, 8, 16] {
            run_ok(n, |b, w| barrier(b, w, 0));
        }
    }

    #[test]
    fn broadcast_completes_for_many_sizes_and_roots() {
        for n in [2u32, 3, 4, 5, 8, 13] {
            for root in [0, n - 1, n / 2] {
                run_ok(n, |b, w| broadcast(b, w, Rank(root), 64, 0));
            }
        }
    }

    #[test]
    fn reduce_completes_for_many_sizes_and_roots() {
        for n in [2u32, 3, 4, 5, 8, 13] {
            for root in [0, n - 1] {
                run_ok(n, |b, w| reduce(b, w, Rank(root), 64, 0));
            }
        }
    }

    #[test]
    fn allreduce_completes() {
        for n in [2, 3, 6, 9, 16] {
            run_ok(n, |b, w| allreduce(b, w, 8, 0));
        }
    }

    #[test]
    fn broadcast_message_count_is_n_minus_1() {
        let n = 8;
        let mut b = ProgramBuilder::new(n);
        broadcast(&mut b, n, Rank(0), 4, 0);
        let p = b.build();
        assert_eq!(p.total_sends() as u32, n - 1);
    }

    #[test]
    fn reduce_message_count_is_n_minus_1() {
        let n = 13;
        let mut b = ProgramBuilder::new(n);
        reduce(&mut b, n, Rank(0), 4, 0);
        let p = b.build();
        assert_eq!(p.total_sends() as u32, n - 1);
    }

    #[test]
    fn barrier_synchronises_ranks() {
        // A rank that computes for a long time before the barrier must
        // delay every other rank's post-barrier finalize.
        let n = 4u32;
        let mut b = ProgramBuilder::new(n);
        b.rank(Rank(2)).compute(5_000_000);
        barrier(&mut b, n, 0);
        let p = b.build();
        let t = simulate(&p, &SimConfig::deterministic()).unwrap();
        for r in 0..n {
            assert!(
                t.meta.makespan >= SimTime(5_000_000),
                "rank {r} finished before the slow rank reached the barrier"
            );
            let last = t.rank_events(Rank(r)).last().unwrap();
            assert!(last.time >= SimTime(5_000_000), "rank {r} not held back");
        }
    }

    #[test]
    fn collective_traffic_carries_identifying_frames() {
        let n = 4u32;
        let mut b = ProgramBuilder::new(n);
        barrier(&mut b, n, 0);
        let p = b.build();
        let t = simulate(&p, &SimConfig::deterministic()).unwrap();
        let mut saw_barrier_frame = false;
        for (_, e) in t.iter() {
            if let Some(s) = t.stacks().get(e.stack) {
                if s.frames().iter().any(|f| f == "MPI_Barrier") {
                    saw_barrier_frame = true;
                }
            }
        }
        assert!(saw_barrier_frame);
    }

    #[test]
    fn multiple_collectives_do_not_collide() {
        let n = 5u32;
        let mut b = ProgramBuilder::new(n);
        barrier(&mut b, n, 0);
        broadcast(&mut b, n, Rank(1), 16, 1);
        barrier(&mut b, n, 2);
        allreduce(&mut b, n, 8, 3);
        let p = b.build();
        let t = simulate(&p, &SimConfig::deterministic()).unwrap();
        assert_eq!(t.meta.unmatched_messages, 0);
    }
}
