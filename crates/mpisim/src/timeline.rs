//! Per-rank activity timelines derived from a trace.
//!
//! A coarse Gantt view of an execution: for each rank, the simulated-time
//! segments leading up to each event, labelled by what the rank was
//! progressing towards. Waiting on a receive shows up as long `Recv`
//! segments — the visual footprint of message delays, and a favourite
//! course visual ("where did my run's time go, and why does it differ
//! between runs?").

use crate::trace::{EventKind, Trace};
use crate::types::{Rank, SimTime};
use serde::{Deserialize, Serialize};

/// The activity classes of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activity {
    /// Progressing towards a send (local work + send overheads).
    Sending,
    /// Progressing towards a receive completion (may include blocking).
    Receiving,
    /// Trailing segment up to finalize.
    WindingDown,
}

impl Activity {
    /// Short label.
    pub fn label(&self) -> &'static str {
        match self {
            Activity::Sending => "send",
            Activity::Receiving => "recv",
            Activity::WindingDown => "finalize",
        }
    }
}

/// One timeline segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Segment start.
    pub start: SimTime,
    /// Segment end (the event's completion time).
    pub end: SimTime,
    /// What the rank was doing.
    pub activity: Activity,
}

impl Segment {
    /// Segment duration in nanoseconds.
    pub fn duration(&self) -> u64 {
        self.end.nanos().saturating_sub(self.start.nanos())
    }
}

/// Timelines for every rank of a run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    /// `segments[r]` is rank r's segments in time order.
    pub segments: Vec<Vec<Segment>>,
    /// The run's makespan.
    pub makespan: SimTime,
}

impl Timeline {
    /// Build the timeline of a trace.
    pub fn of(trace: &Trace) -> Timeline {
        let mut segments = Vec::with_capacity(trace.world_size() as usize);
        for r in 0..trace.world_size() {
            let mut segs = Vec::new();
            let mut cursor = SimTime::ZERO;
            for ev in trace.rank_events(Rank(r)) {
                let activity = match ev.kind {
                    EventKind::Init => continue,
                    EventKind::Send { .. } => Activity::Sending,
                    EventKind::Recv { .. } => Activity::Receiving,
                    EventKind::Finalize => Activity::WindingDown,
                };
                // Clamp: wait-emitted receive events may carry completion
                // times earlier than the preceding event's time.
                let end = ev.time.max(cursor);
                segs.push(Segment {
                    start: cursor,
                    end,
                    activity,
                });
                cursor = end;
            }
            segments.push(segs);
        }
        Timeline {
            segments,
            makespan: trace.meta.makespan,
        }
    }

    /// Total nanoseconds rank `r` spent in each activity class, returned
    /// as `(sending, receiving, winding_down)`.
    pub fn totals(&self, rank: Rank) -> (u64, u64, u64) {
        let mut s = (0, 0, 0);
        for seg in &self.segments[rank.index()] {
            match seg.activity {
                Activity::Sending => s.0 += seg.duration(),
                Activity::Receiving => s.1 += seg.duration(),
                Activity::WindingDown => s.2 += seg.duration(),
            }
        }
        s
    }

    /// The rank spending the most time progressing receives — the first
    /// place to look when a run is slow.
    pub fn most_blocked_rank(&self) -> Option<(Rank, u64)> {
        (0..self.segments.len())
            .map(|r| (Rank(r as u32), self.totals(Rank(r as u32)).1))
            .max_by_key(|&(_, t)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn pingpong_timeline() -> Timeline {
        let mut b = ProgramBuilder::new(2);
        b.rank(Rank(0))
            .compute(1000)
            .send(Rank(1), Tag(0), 8)
            .recv(Rank(1), Tag(1).into());
        b.rank(Rank(1))
            .recv(Rank(0), Tag(0).into())
            .send(Rank(0), Tag(1), 8);
        let t = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
        Timeline::of(&t)
    }

    #[test]
    fn segments_are_contiguous_and_monotone() {
        let tl = pingpong_timeline();
        for segs in &tl.segments {
            let mut cursor = SimTime::ZERO;
            for s in segs {
                assert_eq!(s.start, cursor);
                assert!(s.end >= s.start);
                cursor = s.end;
            }
        }
    }

    #[test]
    fn blocked_receiver_accumulates_receiving_time() {
        let tl = pingpong_timeline();
        // Rank 1 waits for rank 0's compute(1000) + latency before its recv.
        let (_, recv_ns, _) = tl.totals(Rank(1));
        assert!(recv_ns >= 1000, "recv time {recv_ns}");
        let (rank, t) = tl.most_blocked_rank().unwrap();
        // Rank 0 waits for the round trip, rank 1 for the one-way
        // delivery; either way the time must be positive.
        assert!(t > 0);
        let _ = rank;
    }

    #[test]
    fn activity_labels() {
        assert_eq!(Activity::Sending.label(), "send");
        assert_eq!(Activity::Receiving.label(), "recv");
        assert_eq!(Activity::WindingDown.label(), "finalize");
    }

    #[test]
    fn timeline_covers_makespan() {
        let tl = pingpong_timeline();
        let last_end = tl
            .segments
            .iter()
            .filter_map(|s| s.last())
            .map(|s| s.end)
            .max()
            .unwrap();
        assert_eq!(last_end, tl.makespan);
    }

    #[test]
    fn compute_only_rank() {
        let mut b = ProgramBuilder::new(1);
        b.rank(Rank(0)).compute(500);
        let t = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
        let tl = Timeline::of(&t);
        assert_eq!(tl.segments[0].len(), 1);
        assert_eq!(tl.segments[0][0].activity, Activity::WindingDown);
        assert_eq!(tl.segments[0][0].duration(), 500);
    }
}
