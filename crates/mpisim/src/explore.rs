//! Schedule-space exploration: bounded exhaustive enumeration of the
//! distinct wildcard-match schedules a program admits.
//!
//! The paper's campaigns *sample* non-determinism — random delay draws
//! perturb message arrival order and the kernel distance measures the
//! spread. Sampling can only estimate; this module *enumerates*. It walks
//! every distinct way the message races can resolve (up to a budget),
//! which turns three questions the sampling pipeline cannot answer into
//! computable ones:
//!
//! * **coverage** — how many of the possible schedules did N random runs
//!   actually visit?
//! * **worst case** — what is the maximum kernel distance over *all*
//!   schedules, not just the sampled ones?
//! * **soundness** — is every sampled schedule a member of the enumerated
//!   set? (The strongest differential oracle the testkit has.)
//!
//! ## Branch-point model
//!
//! The only source of communication non-determinism in the simulator is
//! *cross-channel interleaving*: messages on one `(src, dst)` channel are
//! non-overtaking (delivered in send order), but the interleaving of
//! different channels into one destination's arrival stream depends on
//! network delays. A schedule is therefore fully determined by the order
//! in which channel heads are delivered, and the explorer's single
//! transition kind is "deliver the oldest undelivered message on channel
//! `(src, dst)`". Between deliveries every rank runs eagerly to its next
//! blocking point — sound because matching is insensitive to whether a
//! receive is posted before or after a message it does not match (the
//! posted/unexpected queues commute, see [`crate::engine`]).
//!
//! Two reductions keep the walk tractable without losing schedules:
//!
//! * **eager delivery** — a destination with no posted source-wildcard
//!   receive and no source-wildcard receive left in its program cannot
//!   observe cross-channel order (per-channel FIFO scans make its matching
//!   order-invariant), so its arrivals are delivered immediately instead
//!   of branched over;
//! * **sleep sets** — deliveries to *different* destinations commute
//!   (they touch disjoint match engines; any rank executions they unblock
//!   are rank-local), so of two independent transitions explored in one
//!   order, the opposite order is pruned (Godefroid's sleep-set
//!   partial-order reduction).
//!
//! Both reductions are switched off by [`ExploreConfig::brute_force`],
//! which the property suite uses to check that reduction never changes
//! the set of distinct schedules.
//!
//! ## Schedules and replay
//!
//! A [`Schedule`] is the per-rank, per-posting-ordinal `(src, seq)`
//! matching decision vector — exactly the content of a
//! [`MatchRecord`](crate::replay::MatchRecord), and [`simulate_scheduled`]
//! replays one through the ordinary engine to produce a full [`Trace`]
//! (bit-identical for a fixed `SimConfig`). [`ScheduleId`] is a
//! splitmix64 fingerprint of the canonical decision sequence; the id of
//! an explored schedule equals the id of [`Schedule::from_trace`] of any
//! sampled trace that resolved its races the same way, which is what
//! makes set-membership tests and warm artifact-store keys possible.

use crate::matching::{InFlightMsg, MatchEngine, PostKind, PostedRecv};
use crate::ops::Op;
use crate::program::Program;
use crate::replay::MatchRecord;
use crate::trace::Trace;
use crate::types::{ChannelSeq, Rank, ReqSlot, SimTime, SrcSpec, Tag};
use anacin_obs::MetricsRegistry;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::collections::VecDeque;
use std::fmt;

use crate::engine::{simulate_replay, SimConfig, SimError};

/// splitmix64 — the same finalizer the network delay model seeds with;
/// statistically strong enough for fingerprinting decision sequences.
#[inline]
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Canonical fingerprint of one distinct schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ScheduleId(pub u64);

impl fmt::Display for ScheduleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One complete resolution of a program's message races: for every rank
/// and every receive posting ordinal, the `(source, channel sequence)` of
/// the matched message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    decisions: Vec<Vec<Option<(Rank, ChannelSeq)>>>,
}

impl Schedule {
    /// The schedule a completed trace realised. Explored schedules and
    /// sampled traces meet on this: `Schedule::from_trace(t).id()` is a
    /// member of the explored id set iff the run `t` resolved its races
    /// in an enumerated way.
    pub fn from_trace(trace: &Trace) -> Self {
        Schedule {
            decisions: MatchRecord::from_trace(trace).into_decisions(),
        }
    }

    /// Canonical splitmix64 fingerprint over the rank-major decision
    /// sequence (presence, source and channel position all mixed in).
    pub fn id(&self) -> ScheduleId {
        let mut h: u64 = 0x5EED_5C4E_D01E_0001;
        for rank_decisions in &self.decisions {
            h = splitmix64(h ^ 0xA11C_E5ED ^ rank_decisions.len() as u64);
            for d in rank_decisions {
                match d {
                    None => h = splitmix64(h ^ 0x7077),
                    Some((src, seq)) => {
                        h = splitmix64(h ^ 0xC0DE ^ (u64::from(src.0) << 1 | 1));
                        h = splitmix64(h ^ seq.0.rotate_left(17));
                    }
                }
            }
        }
        ScheduleId(h)
    }

    /// The schedule as a replayable [`MatchRecord`].
    pub fn to_record(&self) -> MatchRecord {
        MatchRecord::from_decisions(self.decisions.clone())
    }

    /// Number of recorded matching decisions.
    pub fn decision_count(&self) -> usize {
        self.decisions
            .iter()
            .map(|v| v.iter().filter(|d| d.is_some()).count())
            .sum()
    }
}

/// Replay an explored [`Schedule`] through the full engine: every receive
/// is forced to the schedule's decision, so for a fixed `config` the
/// resulting [`Trace`] is bit-identical call after call.
pub fn simulate_scheduled(
    program: &Program,
    config: &SimConfig,
    schedule: &Schedule,
) -> Result<Trace, SimError> {
    simulate_replay(program, config, &schedule.to_record())
}

/// Exploration bounds. All three caps degrade gracefully: when any is
/// hit the walk stops (or narrows) and [`ExploreStats::truncated`] is
/// set, so callers can always tell a complete enumeration from a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreConfig {
    /// Stop once this many distinct schedules have been recorded.
    pub max_schedules: usize,
    /// Work cap: total branch transitions taken. Guards programs whose
    /// interleaving space is huge even when the schedule space is tiny.
    pub max_branches: u64,
    /// Cap on pending (not yet explored) alternatives across the DFS
    /// stack; beyond it new branch points keep only their first choice.
    pub max_frontier: usize,
    /// Apply sleep-set reduction and eager delivery. `false` is the
    /// unpruned brute-force baseline the property tests diff against.
    pub prune: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_schedules: 4096,
            max_branches: 1_000_000,
            max_frontier: 65_536,
            prune: true,
        }
    }
}

impl ExploreConfig {
    /// Default bounds with the given schedule budget.
    pub fn with_budget(max_schedules: usize) -> Self {
        ExploreConfig {
            max_schedules,
            ..Self::default()
        }
    }

    /// Disable partial-order reduction *and* eager delivery: enumerate
    /// every delivery interleaving. Exponential; for tiny programs only.
    pub fn brute_force(mut self) -> Self {
        self.prune = false;
        self
    }
}

/// What the walk did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreStats {
    /// Branch transitions taken (DFS edges, reductions included).
    pub branches: u64,
    /// Transitions suppressed by sleep-set reduction.
    pub pruned: u64,
    /// Alternatives dropped by the frontier cap.
    pub dropped: u64,
    /// Distinct complete schedules recorded.
    pub schedules: u64,
    /// Complete terminal states visited (≥ `schedules`; the excess are
    /// interleavings that realised an already-seen schedule).
    pub terminals: u64,
    /// Terminal states where some rank was permanently blocked. These are
    /// genuinely reachable resolutions (a wildcard can starve a later
    /// specific receive); they are counted, not recorded as schedules.
    pub deadlocks: u64,
    /// True iff any cap fired, i.e. the enumeration is a lower bound.
    pub truncated: bool,
}

/// The result of [`explore`]: every distinct schedule found, in
/// deterministic DFS discovery order, plus the walk statistics.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Distinct complete schedules, in discovery order.
    pub schedules: Vec<Schedule>,
    /// Walk statistics.
    pub stats: ExploreStats,
}

impl ExploreReport {
    /// Ids of all explored schedules, in discovery order.
    pub fn ids(&self) -> Vec<ScheduleId> {
        self.schedules.iter().map(Schedule::id).collect()
    }

    /// Membership test for a (usually sampled) schedule.
    pub fn contains(&self, id: ScheduleId) -> bool {
        self.schedules.iter().any(|s| s.id() == id)
    }

    /// True iff no budget fired: `schedules` is the *entire* schedule
    /// space of the program.
    pub fn is_complete(&self) -> bool {
        !self.stats.truncated
    }
}

/// Per-program facts the walk consults constantly.
struct Shape {
    world: usize,
    /// Highest op index per rank holding a source-wildcard receive; once a
    /// rank's pc passes this (and no posted wildcard remains) the rank can
    /// never observe cross-channel order again.
    last_any_recv: Vec<Option<usize>>,
}

impl Shape {
    fn new(program: &Program) -> Self {
        let world = program.world_size() as usize;
        let last_any_recv = (0..world)
            .map(|r| {
                program.ops(Rank(r as u32)).iter().rposition(|op| match op {
                    Op::Recv { src, .. } | Op::Irecv { src, .. } => src.is_wildcard(),
                    _ => false,
                })
            })
            .collect();
        Shape {
            world,
            last_any_recv,
        }
    }
}

/// Where a rank stands between deliveries.
#[derive(Clone, PartialEq, Eq)]
enum XStatus {
    Ready,
    BlockedRecv,
    BlockedSsend,
    BlockedWait(Vec<ReqSlot>),
    Done,
}

/// Request-slot state (the causal shadow of the engine's `ReqState`).
#[derive(Clone, PartialEq, Eq)]
enum XReq {
    Unused,
    SendDone,
    RecvPending,
    RecvDone {
        ordinal: u32,
        src: Rank,
        seq: ChannelSeq,
    },
    RecvEmitted,
}

#[derive(Clone)]
struct XRank {
    pc: usize,
    status: XStatus,
    requests: Vec<XReq>,
    chan_seq: Vec<u64>,
    recv_ordinal: u32,
    decisions: Vec<Option<(Rank, ChannelSeq)>>,
}

/// An undelivered message parked on its `(src, dst)` channel.
#[derive(Clone)]
struct XMsg {
    tag: Tag,
    seq: ChannelSeq,
    sync: bool,
}

/// A causal (time-free) simulator state: everything matching-relevant and
/// nothing else, cheap to clone at every branch point.
#[derive(Clone)]
struct XState {
    ranks: Vec<XRank>,
    matchers: Vec<MatchEngine>,
    /// `channels[src][dst]`: sent-but-undelivered messages in send order.
    channels: Vec<Vec<VecDeque<XMsg>>>,
}

impl XState {
    fn new(world: usize) -> Self {
        XState {
            ranks: (0..world)
                .map(|_| XRank {
                    pc: 0,
                    status: XStatus::Ready,
                    requests: Vec::new(),
                    chan_seq: vec![0; world],
                    recv_ordinal: 0,
                    decisions: Vec::new(),
                })
                .collect(),
            matchers: (0..world).map(|_| MatchEngine::new()).collect(),
            channels: vec![vec![VecDeque::new(); world]; world],
        }
    }

    fn req_mut(&mut self, r: usize, slot: ReqSlot) -> &mut XReq {
        let v = &mut self.ranks[r].requests;
        if v.len() <= slot.index() {
            v.resize(slot.index() + 1, XReq::Unused);
        }
        &mut v[slot.index()]
    }

    fn record_decision(&mut self, r: usize, ordinal: u32, src: Rank, seq: ChannelSeq) {
        let d = &mut self.ranks[r].decisions;
        let i = ordinal as usize;
        if d.len() <= i {
            d.resize(i + 1, None);
        }
        d[i] = Some((src, seq));
    }

    fn send(&mut self, from: usize, dst: Rank, tag: Tag, sync: bool) {
        let c = &mut self.ranks[from].chan_seq[dst.index()];
        let seq = ChannelSeq(*c);
        *c += 1;
        self.channels[from][dst.index()].push_back(XMsg { tag, seq, sync });
    }

    fn wake_sync_sender(&mut self, msg: &InFlightMsg) {
        if msg.sync {
            let s = msg.src.index();
            debug_assert!(matches!(self.ranks[s].status, XStatus::BlockedSsend));
            self.ranks[s].status = XStatus::Ready;
        }
    }

    /// All requests done? If so emit receive completions (ordinal-keyed,
    /// so emission order is irrelevant here) and report ready.
    fn try_wait(&mut self, r: usize, reqs: &[ReqSlot]) -> bool {
        let pending = |req: &XReq| matches!(req, XReq::Unused | XReq::RecvPending);
        if reqs.iter().any(|s| {
            pending(
                self.ranks[r]
                    .requests
                    .get(s.index())
                    .unwrap_or(&XReq::Unused),
            )
        }) {
            // NB an `Unused` slot never completes: the engine reports
            // `UnknownRequest`, the explorer reaches a deadlock terminal.
            // Validated programs (`check_requests`) have neither.
            return false;
        }
        for &s in reqs {
            if let XReq::RecvDone { ordinal, src, seq } = *self.req_mut(r, s) {
                self.record_decision(r, ordinal, src, seq);
                *self.req_mut(r, s) = XReq::RecvEmitted;
            }
        }
        true
    }

    /// Run rank `r` from its pc to the next blocking point (mirrors
    /// `Engine::run_rank` minus the clock and the trace).
    fn run_rank(&mut self, program: &Program, r: usize) {
        let rank = Rank(r as u32);
        loop {
            let pc = self.ranks[r].pc;
            let Some(op) = program.ops(rank).get(pc).cloned() else {
                self.ranks[r].status = XStatus::Done;
                return;
            };
            match op {
                Op::Send { dst, tag, .. } => self.send(r, dst, tag, false),
                Op::Ssend { dst, tag, .. } => {
                    self.send(r, dst, tag, true);
                    self.ranks[r].status = XStatus::BlockedSsend;
                    self.ranks[r].pc = pc + 1;
                    return;
                }
                Op::Isend { dst, tag, req, .. } => {
                    self.send(r, dst, tag, false);
                    *self.req_mut(r, req) = XReq::SendDone;
                }
                Op::Recv { src, tag, .. } => {
                    let ordinal = self.ranks[r].recv_ordinal;
                    self.ranks[r].recv_ordinal += 1;
                    let posted = PostedRecv {
                        src,
                        tag,
                        event_idx: 0,
                        ordinal,
                        kind: PostKind::Blocking,
                        posted_at: SimTime::ZERO,
                        forced: None,
                    };
                    match self.matchers[r].on_post(posted) {
                        Some((recv, msg)) => {
                            self.record_decision(r, recv.ordinal, msg.src, msg.seq);
                            self.wake_sync_sender(&msg);
                        }
                        None => {
                            self.ranks[r].status = XStatus::BlockedRecv;
                            self.ranks[r].pc = pc + 1;
                            return;
                        }
                    }
                }
                Op::Irecv { src, tag, req, .. } => {
                    let ordinal = self.ranks[r].recv_ordinal;
                    self.ranks[r].recv_ordinal += 1;
                    *self.req_mut(r, req) = XReq::RecvPending;
                    let posted = PostedRecv {
                        src,
                        tag,
                        event_idx: 0,
                        ordinal,
                        kind: PostKind::Nonblocking(req),
                        posted_at: SimTime::ZERO,
                        forced: None,
                    };
                    if let Some((recv, msg)) = self.matchers[r].on_post(posted) {
                        *self.req_mut(r, req) = XReq::RecvDone {
                            ordinal: recv.ordinal,
                            src: msg.src,
                            seq: msg.seq,
                        };
                        self.wake_sync_sender(&msg);
                    }
                }
                Op::Wait { req, .. } => {
                    if !self.try_wait(r, &[req]) {
                        self.ranks[r].status = XStatus::BlockedWait(vec![req]);
                        self.ranks[r].pc = pc + 1;
                        return;
                    }
                }
                Op::Waitall { ref reqs, .. } => {
                    if !self.try_wait(r, reqs) {
                        self.ranks[r].status = XStatus::BlockedWait(reqs.clone());
                        self.ranks[r].pc = pc + 1;
                        return;
                    }
                }
                Op::Compute { .. } => {}
            }
            self.ranks[r].pc += 1;
        }
    }

    /// Deliver the head of channel `(s, d)` to `d`'s match engine and
    /// propagate the consequences (the DFS transition).
    fn deliver(&mut self, s: usize, d: usize) {
        let m = self.channels[s][d]
            .pop_front()
            .expect("deliver on an empty channel");
        let msg = InFlightMsg {
            src: Rank(s as u32),
            dst: Rank(d as u32),
            tag: m.tag,
            bytes: 0,
            seq: m.seq,
            send_event_idx: 0,
            arrival: SimTime::ZERO,
            sync: m.sync,
        };
        if let Some((recv, msg)) = self.matchers[d].on_arrival(msg) {
            self.wake_sync_sender(&msg);
            match recv.kind {
                PostKind::Blocking => {
                    debug_assert!(matches!(self.ranks[d].status, XStatus::BlockedRecv));
                    self.record_decision(d, recv.ordinal, msg.src, msg.seq);
                    self.ranks[d].status = XStatus::Ready;
                }
                PostKind::Nonblocking(req) => {
                    *self.req_mut(d, req) = XReq::RecvDone {
                        ordinal: recv.ordinal,
                        src: msg.src,
                        seq: msg.seq,
                    };
                    if let XStatus::BlockedWait(reqs) = self.ranks[d].status.clone() {
                        if self.try_wait(d, &reqs) {
                            self.ranks[d].status = XStatus::Ready;
                        }
                    }
                }
            }
        }
    }

    /// Can delivery order into `d` still influence matching? Only a
    /// source-wildcard receive makes arrival interleaving observable;
    /// per-channel FIFO scans settle everything else deterministically.
    fn branch_relevant(&self, shape: &Shape, d: usize) -> bool {
        if self.matchers[d]
            .posted_iter()
            .any(|p| p.src == SrcSpec::Any)
        {
            return true;
        }
        match (&self.ranks[d].status, shape.last_any_recv[d]) {
            (XStatus::Done, _) | (_, None) => false,
            (_, Some(last)) => self.ranks[d].pc <= last,
        }
    }

    /// Deliver everything destined to non-branch-relevant ranks, in
    /// canonical order. Returns true if anything moved.
    fn eager_deliveries(&mut self, shape: &Shape) -> bool {
        let mut moved = false;
        for d in 0..shape.world {
            if self.branch_relevant(shape, d) {
                continue;
            }
            for s in 0..shape.world {
                while !self.channels[s][d].is_empty() {
                    self.deliver(s, d);
                    moved = true;
                }
            }
        }
        moved
    }

    /// Run every ready rank (and, when pruning, every eager delivery) to
    /// fixpoint. After this, the only way forward is a branch delivery.
    fn settle(&mut self, program: &Program, shape: &Shape, prune: bool) {
        loop {
            let mut progress = false;
            for r in 0..shape.world {
                if self.ranks[r].status == XStatus::Ready {
                    self.run_rank(program, r);
                    progress = true;
                }
            }
            if prune && self.eager_deliveries(shape) {
                progress = true;
            }
            if !progress {
                return;
            }
        }
    }

    /// Channels with undelivered messages, canonically ordered by
    /// `(dst, src)`. In prune mode (post-settle) these all target
    /// branch-relevant destinations.
    fn enabled(&self, shape: &Shape) -> Vec<(u32, u32)> {
        let mut v = Vec::new();
        for d in 0..shape.world {
            for s in 0..shape.world {
                if !self.channels[s][d].is_empty() {
                    v.push((s as u32, d as u32));
                }
            }
        }
        v
    }

    fn complete(&self) -> bool {
        self.ranks.iter().all(|r| r.status == XStatus::Done)
    }

    fn schedule(&self) -> Schedule {
        Schedule {
            decisions: self.ranks.iter().map(|r| r.decisions.clone()).collect(),
        }
    }
}

/// One DFS node: a settled state plus the transitions still to take.
struct Frame {
    state: XState,
    transitions: Vec<(u32, u32)>,
    next: usize,
    sleep: Vec<(u32, u32)>,
}

/// Enumerate the distinct schedules of `program` under the bounds in
/// `config`. Deterministic: same inputs, same report, every time.
pub fn explore(program: &Program, config: &ExploreConfig) -> ExploreReport {
    let shape = Shape::new(program);
    let mut stats = ExploreStats::default();
    let mut seen: HashSet<u64> = HashSet::new();
    let mut schedules: Vec<Schedule> = Vec::new();
    let mut stack: Vec<Frame> = Vec::new();
    // Untaken transitions across the whole stack; `- 1` of it is the
    // frontier (one of them is always the path being extended).
    let mut pending: usize = 0;

    // Admit a settled state: record terminals, cap the frontier, push
    // interior nodes. Returns false when the schedule budget halts the
    // whole walk.
    let mut admit = |state: XState,
                     sleep: Vec<(u32, u32)>,
                     stats: &mut ExploreStats,
                     stack: &mut Vec<Frame>,
                     pending: &mut usize|
     -> bool {
        if state.complete() {
            stats.terminals += 1;
            let schedule = state.schedule();
            if seen.insert(schedule.id().0) {
                schedules.push(schedule);
                if schedules.len() >= config.max_schedules {
                    if *pending > 0 {
                        stats.truncated = true;
                    }
                    return false;
                }
            }
            return true;
        }
        let enabled = state.enabled(&shape);
        if enabled.is_empty() {
            stats.deadlocks += 1;
            return true;
        }
        let mut transitions: Vec<(u32, u32)> = if config.prune {
            enabled
                .iter()
                .filter(|t| !sleep.contains(t))
                .copied()
                .collect()
        } else {
            enabled.clone()
        };
        stats.pruned += (enabled.len() - transitions.len()) as u64;
        if transitions.is_empty() {
            // Every continuation is asleep: this state's futures were all
            // covered through commuting transition orders elsewhere.
            return true;
        }
        let alternatives = transitions.len() - 1;
        if *pending + alternatives > config.max_frontier {
            let keep = config.max_frontier.saturating_sub(*pending);
            stats.dropped += (alternatives - keep) as u64;
            stats.truncated = true;
            transitions.truncate(1 + keep);
        }
        *pending += transitions.len();
        stack.push(Frame {
            state,
            transitions,
            next: 0,
            sleep,
        });
        true
    };

    let mut root = XState::new(shape.world);
    root.settle(program, &shape, config.prune);
    if !admit(root, Vec::new(), &mut stats, &mut stack, &mut pending) {
        stats.schedules = schedules.len() as u64;
        return ExploreReport { schedules, stats };
    }

    while let Some(top) = stack.last_mut() {
        if top.next >= top.transitions.len() {
            stack.pop();
            continue;
        }
        let idx = top.next;
        let t = top.transitions[idx];
        top.next += 1;
        pending -= 1;
        stats.branches += 1;
        if stats.branches > config.max_branches {
            stats.truncated = true;
            break;
        }
        // Sleep set for the child: everything already asleep here plus the
        // siblings explored before `t`, minus whatever depends on `t`
        // (same destination = same match engine = dependent).
        let child_sleep: Vec<(u32, u32)> = if config.prune {
            top.sleep
                .iter()
                .chain(top.transitions[..idx].iter())
                .filter(|u| u.1 != t.1)
                .copied()
                .collect()
        } else {
            Vec::new()
        };
        let mut child = top.state.clone();
        child.deliver(t.0 as usize, t.1 as usize);
        child.settle(program, &shape, config.prune);
        if !admit(child, child_sleep, &mut stats, &mut stack, &mut pending) {
            break;
        }
    }

    stats.schedules = schedules.len() as u64;
    ExploreReport { schedules, stats }
}

/// [`explore`] under an `"explore"` span, flushing the walk counters.
pub fn explore_observed(
    program: &Program,
    config: &ExploreConfig,
    metrics: Option<&MetricsRegistry>,
) -> ExploreReport {
    let _span = metrics.map(|m| m.span("explore"));
    let report = explore(program, config);
    if let Some(m) = metrics {
        flush_explore_metrics(m, &report.stats);
    }
    report
}

/// Flush walk statistics into the standard explore counters
/// (`explore/branches`, `explore/pruned`, `explore/schedules`).
pub fn flush_explore_metrics(metrics: &MetricsRegistry, stats: &ExploreStats) {
    metrics.counter("explore/branches").add(stats.branches);
    metrics
        .counter("explore/pruned")
        .add(stats.pruned + stats.dropped);
    metrics.counter("explore/schedules").add(stats.schedules);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::program::ProgramBuilder;
    use crate::types::TagSpec;

    fn message_race(n: u32) -> Program {
        let mut b = ProgramBuilder::new(n);
        for r in 1..n {
            b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
        }
        for _ in 1..n {
            b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
        }
        b.build()
    }

    fn id_set(report: &ExploreReport) -> HashSet<u64> {
        report.schedules.iter().map(|s| s.id().0).collect()
    }

    #[test]
    fn deterministic_program_has_one_schedule() {
        // Ping-pong with specific receives: no branch points at all under
        // pruning, and exactly one distinct schedule by brute force.
        let mut b = ProgramBuilder::new(2);
        b.rank(Rank(0))
            .send(Rank(1), Tag(0), 1)
            .recv(Rank(1), TagSpec::Tag(Tag(1)));
        b.rank(Rank(1))
            .recv(Rank(0), TagSpec::Tag(Tag(0)))
            .send(Rank(0), Tag(1), 1);
        let p = b.build();
        let pruned = explore(&p, &ExploreConfig::default());
        assert_eq!(pruned.schedules.len(), 1);
        assert_eq!(pruned.stats.branches, 0, "nothing to branch over");
        assert!(pruned.is_complete());
        let brute = explore(&p, &ExploreConfig::default().brute_force());
        assert_eq!(id_set(&pruned), id_set(&brute));
    }

    #[test]
    fn message_race_enumerates_all_permutations() {
        // n-1 senders race into one wildcard receiver: (n-1)! schedules.
        for (n, want) in [(3u32, 2usize), (4, 6), (5, 24)] {
            let report = explore(&message_race(n), &ExploreConfig::default());
            assert_eq!(report.schedules.len(), want, "race({n})");
            assert!(report.is_complete());
            assert_eq!(report.stats.deadlocks, 0);
            // All ids distinct by construction of the dedupe set.
            assert_eq!(id_set(&report).len(), want);
        }
    }

    #[test]
    fn pruning_matches_brute_force_and_saves_work() {
        // Two independent races (different destinations): 2 × 2 = 4
        // schedules. Brute force interleaves the independent deliveries;
        // sleep sets + eager delivery must not change the schedule set.
        let mut b = ProgramBuilder::new(6);
        for (dst, srcs) in [(0u32, [1u32, 2]), (3, [4, 5])] {
            for s in srcs {
                b.rank(Rank(s)).send(Rank(dst), Tag(0), 1);
            }
            for _ in srcs {
                b.rank(Rank(dst)).recv_any(TagSpec::Tag(Tag(0)));
            }
        }
        let p = b.build();
        let pruned = explore(&p, &ExploreConfig::default());
        let brute = explore(&p, &ExploreConfig::default().brute_force());
        assert!(pruned.is_complete() && brute.is_complete());
        assert_eq!(pruned.schedules.len(), 4);
        assert_eq!(id_set(&pruned), id_set(&brute));
        assert!(
            pruned.stats.branches < brute.stats.branches,
            "reduction saved no work: {} vs {}",
            pruned.stats.branches,
            brute.stats.branches
        );
    }

    #[test]
    fn wildcard_can_starve_a_specific_receive_into_deadlock() {
        // recv(ANY) then recv(src=1): if the wildcard eats rank 1's only
        // message, the specific receive starves. One completing schedule,
        // at least one deadlock terminal — enumerated, not recorded.
        let mut b = ProgramBuilder::new(3);
        b.rank(Rank(1)).send(Rank(0), Tag(0), 1);
        b.rank(Rank(2)).send(Rank(0), Tag(0), 1);
        b.rank(Rank(0))
            .recv_any(TagSpec::Tag(Tag(0)))
            .recv(Rank(1), TagSpec::Tag(Tag(0)));
        let p = b.build();
        let report = explore(&p, &ExploreConfig::default());
        assert_eq!(report.schedules.len(), 1);
        assert!(report.stats.deadlocks >= 1);
        assert!(report.is_complete());
        let brute = explore(&p, &ExploreConfig::default().brute_force());
        assert_eq!(id_set(&report), id_set(&brute));
    }

    #[test]
    fn schedule_budget_truncates() {
        let cfg = ExploreConfig::with_budget(5);
        let report = explore(&message_race(6), &cfg);
        assert_eq!(report.schedules.len(), 5);
        assert!(report.stats.truncated);
        assert!(!report.is_complete());
    }

    #[test]
    fn branch_budget_truncates() {
        let cfg = ExploreConfig {
            max_branches: 7,
            ..ExploreConfig::default()
        };
        let report = explore(&message_race(6), &cfg);
        assert!(report.stats.truncated);
        assert!(report.stats.branches <= 8);
    }

    #[test]
    fn frontier_cap_degrades_but_still_explores() {
        let cfg = ExploreConfig {
            max_frontier: 1,
            ..ExploreConfig::default()
        };
        let report = explore(&message_race(5), &cfg);
        assert!(report.stats.truncated);
        assert!(report.stats.dropped > 0);
        assert!(!report.schedules.is_empty());
        assert!(report.schedules.len() < 24);
    }

    #[test]
    fn explored_schedules_replay_to_themselves() {
        let p = message_race(5);
        let report = explore(&p, &ExploreConfig::default());
        for s in &report.schedules {
            let t = simulate_scheduled(&p, &SimConfig::with_nd_percent(100.0, 7), s).unwrap();
            assert_eq!(Schedule::from_trace(&t).id(), s.id());
            t.validate().unwrap();
        }
    }

    #[test]
    fn sampled_runs_land_inside_the_explored_set() {
        let p = message_race(5);
        let report = explore(&p, &ExploreConfig::default());
        let ids = id_set(&report);
        for seed in 0..200u64 {
            let t = simulate(&p, &SimConfig::with_nd_percent(100.0, seed)).unwrap();
            assert!(
                ids.contains(&Schedule::from_trace(&t).id().0),
                "seed {seed} sampled an unenumerated schedule"
            );
        }
    }

    #[test]
    fn nonblocking_waitall_race_enumerates_like_blocking() {
        // Same race expressed with irecv_any + waitall: the schedule
        // space is identical (matching, not completion, is what varies).
        let n = 4u32;
        let mut b = ProgramBuilder::new(n);
        for r in 1..n {
            b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
        }
        {
            let mut r0 = b.rank(Rank(0));
            let reqs: Vec<_> = (1..n).map(|_| r0.irecv_any(TagSpec::Any)).collect();
            r0.waitall(reqs);
        }
        let p = b.build();
        let pruned = explore(&p, &ExploreConfig::default());
        let brute = explore(&p, &ExploreConfig::default().brute_force());
        assert_eq!(pruned.schedules.len(), 6);
        assert_eq!(id_set(&pruned), id_set(&brute));
    }

    #[test]
    fn ssend_sync_chains_explore_cleanly() {
        // Synchronous sends racing into a wildcard receiver: the sender
        // wake-up chain rides through the explorer's match sites.
        let n = 4u32;
        let mut b = ProgramBuilder::new(n);
        for r in 1..n {
            b.rank(Rank(r)).ssend(Rank(0), Tag(0), 1);
        }
        for _ in 1..n {
            b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
        }
        let p = b.build();
        let pruned = explore(&p, &ExploreConfig::default());
        let brute = explore(&p, &ExploreConfig::default().brute_force());
        assert_eq!(pruned.schedules.len(), 6);
        assert_eq!(id_set(&pruned), id_set(&brute));
        for s in &pruned.schedules {
            let t = simulate_scheduled(&p, &SimConfig::deterministic(), s).unwrap();
            assert_eq!(Schedule::from_trace(&t).id(), s.id());
        }
    }

    #[test]
    fn tag_wildcards_alone_do_not_branch() {
        // tag-ANY receives with specific sources are deterministic given
        // per-channel FIFO order; the explorer must see a single schedule
        // without taking a single branch.
        let mut b = ProgramBuilder::new(3);
        b.rank(Rank(1)).send(Rank(0), Tag(1), 1);
        b.rank(Rank(2)).send(Rank(0), Tag(2), 1);
        b.rank(Rank(0))
            .recv(Rank(1), TagSpec::Any)
            .recv(Rank(2), TagSpec::Any);
        let p = b.build();
        let report = explore(&p, &ExploreConfig::default());
        assert_eq!(report.schedules.len(), 1);
        assert_eq!(report.stats.branches, 0);
        let brute = explore(&p, &ExploreConfig::default().brute_force());
        assert_eq!(id_set(&report), id_set(&brute));
    }

    #[test]
    fn schedule_ids_are_stable_and_distinct() {
        let p = message_race(4);
        let a = explore(&p, &ExploreConfig::default());
        let b = explore(&p, &ExploreConfig::default());
        assert_eq!(a.ids(), b.ids(), "enumeration must be deterministic");
        assert_eq!(
            a.ids().into_iter().collect::<HashSet<_>>().len(),
            a.schedules.len()
        );
        for s in &a.schedules {
            assert_eq!(format!("{}", s.id()).len(), 16);
        }
    }

    #[test]
    fn explore_observed_flushes_counters() {
        let m = MetricsRegistry::new();
        let report = explore_observed(&message_race(4), &ExploreConfig::default(), Some(&m));
        let rep = m.report();
        assert_eq!(
            rep.counter("explore/schedules"),
            Some(report.stats.schedules)
        );
        assert_eq!(rep.counter("explore/branches"), Some(report.stats.branches));
        assert!(rep.span("explore").is_some());
    }
}
