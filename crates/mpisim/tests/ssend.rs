//! Synchronous-send (rendezvous) semantics tests.

use anacin_mpisim::engine::SimError;
use anacin_mpisim::prelude::*;

#[test]
fn ssend_completes_when_receiver_posts() {
    let mut b = ProgramBuilder::new(2);
    b.rank(Rank(0)).ssend(Rank(1), Tag(0), 8).compute(10);
    b.rank(Rank(1)).recv(Rank(0), Tag(0).into());
    let t = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
    assert_eq!(t.meta.unmatched_messages, 0);
    t.validate().unwrap();
}

#[test]
fn ssend_blocks_until_late_receiver_arrives() {
    // The receiver computes for a long time before posting; the sender's
    // finalize must be held back past that computation (eager Send would
    // finish immediately).
    let mut b = ProgramBuilder::new(2);
    b.rank(Rank(0)).ssend(Rank(1), Tag(0), 8);
    b.rank(Rank(1))
        .compute(1_000_000)
        .recv(Rank(0), Tag(0).into());
    let t = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
    let sender_final = t.rank_events(Rank(0)).last().unwrap().time;
    assert!(
        sender_final >= SimTime(1_000_000),
        "ssend returned before the receiver matched: {sender_final}"
    );
    // Eager comparison.
    let mut b = ProgramBuilder::new(2);
    b.rank(Rank(0)).send(Rank(1), Tag(0), 8);
    b.rank(Rank(1))
        .compute(1_000_000)
        .recv(Rank(0), Tag(0).into());
    let t2 = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
    let eager_final = t2.rank_events(Rank(0)).last().unwrap().time;
    assert!(eager_final < SimTime(1_000_000));
}

#[test]
fn head_to_head_ssend_deadlocks() {
    // The textbook unsafe exchange: both ranks ssend first.
    let mut b = ProgramBuilder::new(2);
    b.rank(Rank(0))
        .ssend(Rank(1), Tag(0), 8)
        .recv(Rank(1), Tag(0).into());
    b.rank(Rank(1))
        .ssend(Rank(0), Tag(0), 8)
        .recv(Rank(0), Tag(0).into());
    match simulate(&b.build(), &SimConfig::deterministic()) {
        Err(SimError::Deadlock(r)) => {
            assert_eq!(r.blocked.len(), 2);
            assert_eq!(r.unmatched_messages, 2);
            assert!(r.to_string().contains("Ssend"));
        }
        other => panic!("expected the classic deadlock, got {other:?}"),
    }
}

#[test]
fn sendrecv_exchange_is_deadlock_free() {
    // The fix for the head-to-head pattern.
    let mut b = ProgramBuilder::new(2);
    b.rank(Rank(0)).sendrecv(Rank(1), Rank(1), Tag(0), 8);
    b.rank(Rank(1)).sendrecv(Rank(0), Rank(0), Tag(0), 8);
    let t = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
    assert_eq!(t.meta.unmatched_messages, 0);
    t.validate().unwrap();
}

#[test]
fn ssend_ring_completes() {
    // Ring where each rank receives before ssending onward: no deadlock.
    let n = 5u32;
    let mut b = ProgramBuilder::new(n);
    b.rank(Rank(0))
        .ssend(Rank(1), Tag(0), 1)
        .recv(Rank(n - 1), Tag(0).into());
    for r in 1..n {
        let next = Rank((r + 1) % n);
        b.rank(Rank(r))
            .recv(Rank(r - 1), Tag(0).into())
            .ssend(next, Tag(0), 1);
    }
    let t = simulate(&b.build(), &SimConfig::with_nd_percent(100.0, 3)).unwrap();
    assert_eq!(t.meta.messages, n as u64);
    assert_eq!(t.meta.unmatched_messages, 0);
}

#[test]
fn ssend_with_wildcard_receivers_and_nd_is_reproducible() {
    let build = || {
        let mut b = ProgramBuilder::new(4);
        for r in 1..4 {
            b.rank(Rank(r)).ssend(Rank(0), Tag(0), 4);
        }
        for _ in 1..4 {
            b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
        }
        b.build()
    };
    let c = SimConfig::with_nd_percent(100.0, 11);
    let t1 = simulate(&build(), &c).unwrap();
    let t2 = simulate(&build(), &c).unwrap();
    assert_eq!(t1.match_order(Rank(0)), t2.match_order(Rank(0)));
    t1.validate().unwrap();
}

#[test]
fn ssend_to_nonblocking_receiver() {
    let mut b = ProgramBuilder::new(2);
    b.rank(Rank(0)).ssend(Rank(1), Tag(0), 8);
    {
        let mut r1 = b.rank(Rank(1));
        let r = r1.irecv_any(TagSpec::Any);
        r1.compute(500).wait(r);
    }
    let t = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
    assert_eq!(t.meta.unmatched_messages, 0);
    t.validate().unwrap();
}

#[test]
fn self_ssend_deadlocks() {
    // A rank that ssends to itself before posting the receive can never
    // proceed (rendezvous needs the matching receive).
    let mut b = ProgramBuilder::new(1);
    b.rank(Rank(0))
        .ssend(Rank(0), Tag(0), 1)
        .recv(Rank(0), Tag(0).into());
    assert!(matches!(
        simulate(&b.build(), &SimConfig::deterministic()),
        Err(SimError::Deadlock(_))
    ));
}
