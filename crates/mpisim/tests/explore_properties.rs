//! Property tests for the schedule explorer.
//!
//! The load-bearing one is **pruning soundness**: on programs tiny enough
//! to brute-force, DFS with sleep-set reduction + eager delivery must
//! produce exactly the same set of distinct schedule fingerprints as the
//! unpruned enumeration of every delivery interleaving. The others pin the
//! replay loop: every explored schedule replays through the real engine
//! back to its own fingerprint, and sampled runs always land inside a
//! complete explored set.

use anacin_mpisim::explore::{explore, simulate_scheduled, ExploreConfig, Schedule};
use anacin_mpisim::prelude::*;
use proptest::prelude::*;
use std::collections::HashSet;

fn mix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seed-derived tiny program: 1–2 sender ranks each pushing 1–2
/// messages (tags 0/1, sometimes synchronous) at rank 0, which consumes
/// them through a random mix of blocking/nonblocking, wildcard/specific
/// receives. Small enough that brute-force enumeration of all delivery
/// interleavings stays well under the branch budget, rich enough to cover
/// every explorer code path — including receives that can starve into a
/// deadlock terminal.
fn tiny_program(seed: u64) -> Program {
    let mut x = seed;
    let senders = 1 + (mix(&mut x) % 2) as u32; // 1..=2
    let mut b = ProgramBuilder::new(senders + 1);
    let mut sent: Vec<(u32, i32)> = Vec::new();
    for s in 1..=senders {
        let msgs = 1 + (mix(&mut x) % 2) as u32; // 1..=2 per sender
        for _ in 0..msgs {
            let tag = (mix(&mut x) % 2) as i32;
            if mix(&mut x).is_multiple_of(4) {
                b.rank(Rank(s)).ssend(Rank(0), Tag(tag), 1);
            } else {
                b.rank(Rank(s)).send(Rank(0), Tag(tag), 1);
            }
            sent.push((s, tag));
        }
    }
    let mut pending = Vec::new();
    for &(src, tag) in &sent {
        // Half the receives target one sent message's (src, tag), so
        // completions are common; the rest are drawn blind, so starvation
        // and deadlock terminals appear too.
        let (src_spec, tag_spec) = if mix(&mut x).is_multiple_of(2) {
            (SrcSpec::Rank(Rank(src)), TagSpec::Tag(Tag(tag)))
        } else {
            let src_spec = match mix(&mut x) % 3 {
                0 => SrcSpec::Any,
                _ => SrcSpec::Rank(Rank(1 + (mix(&mut x) % senders as u64) as u32)),
            };
            let tag_spec = match mix(&mut x) % 3 {
                0 => TagSpec::Any,
                _ => TagSpec::Tag(Tag((mix(&mut x) % 2) as i32)),
            };
            (src_spec, tag_spec)
        };
        let wildcard_src = src_spec == SrcSpec::Any;
        let mut r0 = b.rank(Rank(0));
        if mix(&mut x).is_multiple_of(2) {
            let req = match (wildcard_src, src_spec) {
                (true, _) => r0.irecv_any(tag_spec),
                (false, SrcSpec::Rank(r)) => r0.irecv(r, tag_spec),
                _ => unreachable!(),
            };
            pending.push(req);
        } else {
            match (wildcard_src, src_spec) {
                (true, _) => {
                    r0.recv_any(tag_spec);
                }
                (false, SrcSpec::Rank(r)) => {
                    r0.recv(r, tag_spec);
                }
                _ => unreachable!(),
            }
        }
    }
    if !pending.is_empty() {
        b.rank(Rank(0)).waitall(pending);
    }
    b.build()
}

fn generous() -> ExploreConfig {
    ExploreConfig {
        max_schedules: 4096,
        max_branches: 1 << 20,
        max_frontier: 1 << 16,
        prune: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Partial-order reduction never changes the set of distinct
    /// schedules: pruned DFS == unpruned brute force, on every tiny
    /// program.
    #[test]
    fn pruning_is_sound_on_tiny_programs(seed in 0u64..1 << 48) {
        let p = tiny_program(seed);
        let pruned = explore(&p, &generous());
        let brute = explore(&p, &generous().brute_force());
        prop_assert!(pruned.is_complete(), "pruned walk truncated on a tiny program");
        prop_assert!(brute.is_complete(), "brute walk truncated on a tiny program");
        let pruned_ids: HashSet<u64> = pruned.schedules.iter().map(|s| s.id().0).collect();
        let brute_ids: HashSet<u64> = brute.schedules.iter().map(|s| s.id().0).collect();
        prop_assert_eq!(pruned_ids, brute_ids);
        // Reduction must reduce (or at least not inflate) work.
        prop_assert!(pruned.stats.branches <= brute.stats.branches);
    }

    /// Every explored schedule round-trips through the real engine: the
    /// replayed trace realises exactly the schedule that was fed in.
    #[test]
    fn explored_schedules_replay_to_their_own_id(seed in 0u64..1 << 48, nd_seed in 0u64..1000) {
        let p = tiny_program(seed);
        let report = explore(&p, &generous());
        prop_assert!(report.is_complete());
        for s in &report.schedules {
            let t = simulate_scheduled(&p, &SimConfig::with_nd_percent(100.0, nd_seed), s)
                .unwrap_or_else(|e| panic!("seed {seed}: replay failed: {e}"));
            prop_assert_eq!(Schedule::from_trace(&t).id(), s.id());
        }
    }

    /// Random-seed sampling can only ever realise enumerated schedules:
    /// the sampled fingerprint is a member of any complete explored set.
    #[test]
    fn sampling_stays_inside_the_explored_set(seed in 0u64..1 << 48, sim_seed in 0u64..10_000) {
        let p = tiny_program(seed);
        let report = explore(&p, &generous());
        prop_assert!(report.is_complete());
        let ids: HashSet<u64> = report.schedules.iter().map(|s| s.id().0).collect();
        // Deadlock-capable draws may fail to simulate; that is fine — the
        // oracle only constrains runs that complete.
        if let Ok(t) = simulate(&p, &SimConfig::with_nd_percent(100.0, sim_seed)) {
            prop_assert!(
                ids.contains(&Schedule::from_trace(&t).id().0),
                "sampled schedule missing from a complete enumeration"
            );
        }
    }
}
