//! Property-based tests of the simulator's core invariants.
//!
//! Strategy: generate random-but-balanced communication programs (every
//! message sent has a wildcard receive posted at its destination), run them
//! under random ND settings and seeds, and check invariants that must hold
//! for *every* MPI-legal execution.

use anacin_mpisim::prelude::*;
use proptest::prelude::*;

/// A randomly generated balanced program: a list of (src, dst) message
/// directives; each dst posts one wildcard receive per inbound message.
fn build_program(world: u32, msgs: &[(u32, u32)]) -> Program {
    let mut b = ProgramBuilder::new(world);
    let mut inbound = vec![0u32; world as usize];
    for &(src, dst) in msgs {
        b.rank(Rank(src)).send(Rank(dst), Tag(0), 8);
        inbound[dst as usize] += 1;
    }
    for (r, &n) in inbound.iter().enumerate() {
        for _ in 0..n {
            b.rank(Rank(r as u32)).recv_any(TagSpec::Tag(Tag(0)));
        }
    }
    b.build()
}

fn msgs_strategy(world: u32) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec(
        (0..world, 0..world).prop_filter("no self sends", |(s, d)| s != d),
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every balanced program terminates without deadlock, delivers every
    /// message, and produces an internally consistent trace.
    #[test]
    fn balanced_programs_terminate_and_validate(
        msgs in msgs_strategy(6),
        nd in 0.0f64..=100.0,
        seed in 0u64..1000,
    ) {
        let p = build_program(6, &msgs);
        prop_assert!(p.check_balance().is_ok());
        let t = simulate(&p, &SimConfig::with_nd_percent(nd, seed)).unwrap();
        prop_assert_eq!(t.meta.messages as usize, msgs.len());
        prop_assert_eq!(t.meta.unmatched_messages, 0);
        let checked = t.validate().unwrap();
        prop_assert_eq!(checked, msgs.len());
    }

    /// The same seed always reproduces the same trace, at any ND level.
    #[test]
    fn same_seed_is_reproducible(
        msgs in msgs_strategy(5),
        nd in 0.0f64..=100.0,
        seed in 0u64..1000,
    ) {
        let p = build_program(5, &msgs);
        let c = SimConfig::with_nd_percent(nd, seed);
        let t1 = simulate(&p, &c).unwrap();
        let t2 = simulate(&p, &c).unwrap();
        for r in 0..5 {
            prop_assert_eq!(t1.rank_events(Rank(r)), t2.rank_events(Rank(r)));
        }
    }

    /// With 0% ND the trace is identical for every seed.
    #[test]
    fn zero_nd_is_seed_independent(
        msgs in msgs_strategy(5),
        seed_a in 0u64..1000,
        seed_b in 0u64..1000,
    ) {
        let p = build_program(5, &msgs);
        let ta = simulate(&p, &SimConfig { network: NetworkConfig::deterministic(), seed: seed_a }).unwrap();
        let tb = simulate(&p, &SimConfig { network: NetworkConfig::deterministic(), seed: seed_b }).unwrap();
        for r in 0..5 {
            prop_assert_eq!(ta.rank_events(Rank(r)), tb.rank_events(Rank(r)));
        }
    }

    /// Per-rank event times are monotonically non-decreasing in program
    /// order (logical precedence respects simulated time).
    #[test]
    fn rank_event_times_monotone(
        msgs in msgs_strategy(6),
        nd in 0.0f64..=100.0,
        seed in 0u64..500,
    ) {
        let p = build_program(6, &msgs);
        let t = simulate(&p, &SimConfig::with_nd_percent(nd, seed)).unwrap();
        for r in 0..6 {
            let evs = t.rank_events(Rank(r));
            for w in evs.windows(2) {
                prop_assert!(w[0].time <= w[1].time,
                    "rank {r}: {:?} then {:?}", w[0], w[1]);
            }
        }
    }

    /// Causality: every receive completes at or after its matched send.
    #[test]
    fn receives_follow_their_sends(
        msgs in msgs_strategy(6),
        nd in 0.0f64..=100.0,
        seed in 0u64..500,
    ) {
        let p = build_program(6, &msgs);
        let t = simulate(&p, &SimConfig::with_nd_percent(nd, seed)).unwrap();
        for (_, e) in t.iter() {
            if let EventKind::Recv { send_event, .. } = e.kind {
                let s = t.event(send_event);
                prop_assert!(s.time <= e.time, "recv at {} before send at {}", e.time, s.time);
            }
        }
    }

    /// Non-overtaking: for each channel (src, dst), matched channel
    /// sequence numbers appear in increasing order along the receiver's
    /// program order.
    #[test]
    fn channel_sequences_monotone_per_channel(
        msgs in msgs_strategy(6),
        nd in 0.0f64..=100.0,
        seed in 0u64..500,
    ) {
        let p = build_program(6, &msgs);
        let t = simulate(&p, &SimConfig::with_nd_percent(nd, seed)).unwrap();
        for r in 0..6u32 {
            let mut last: std::collections::HashMap<Rank, u64> = Default::default();
            for e in t.rank_events(Rank(r)) {
                if let EventKind::Recv { src, seq, .. } = e.kind {
                    if let Some(&prev) = last.get(&src) {
                        prop_assert!(seq.0 > prev,
                            "rank {r} matched seq {} from {src} after {}", seq.0, prev);
                    }
                    last.insert(src, seq.0);
                }
            }
        }
    }

    /// Replay pins every wildcard match: replaying a recorded run under a
    /// different seed reproduces all match orders exactly.
    #[test]
    fn replay_reproduces_match_orders(
        msgs in msgs_strategy(5),
        record_seed in 0u64..100,
        replay_seed in 100u64..200,
    ) {
        let p = build_program(5, &msgs);
        let recorded = simulate(&p, &SimConfig::with_nd_percent(100.0, record_seed)).unwrap();
        let rec = MatchRecord::from_trace(&recorded);
        let replayed = simulate_replay(
            &p,
            &SimConfig::with_nd_percent(100.0, replay_seed),
            &rec,
        ).unwrap();
        for r in 0..5 {
            prop_assert_eq!(
                recorded.match_order(Rank(r)),
                replayed.match_order(Rank(r))
            );
        }
    }
}
