//! # anacin-testkit
//!
//! A deterministic-simulation test harness for the `anacin-rs` pipeline:
//! seeded random generation of arbitrary-but-terminating MPI programs
//! ([`generator`]), structural trace validation ([`validate`]), and
//! differential/metamorphic oracles ([`oracles`]) that must hold for every
//! program at every non-determinism level.
//!
//! The design follows deterministic-simulation testing as practised on
//! distributed databases: because the simulator is a pure function of
//! `(program, config)`, a single `u64` seed reproduces any failure exactly
//! — the generator, the network delays and the matcher all derive from it.
//! The harness therefore needs no golden outputs; it checks *laws*:
//!
//! ```
//! use anacin_testkit::prelude::*;
//!
//! // One seed = one random program + the full oracle battery.
//! let summary = check_seed(42).expect("all oracles hold");
//! assert!(summary.validation.messages > 0);
//! ```
//!
//! The property suites drive [`check_seed`] across hundreds of seeds; the
//! CLI exposes the same entry points as `anacin testkit gen` and
//! `anacin testkit check`.

#![warn(missing_docs)]

pub mod generator;
pub mod oracles;
pub mod validate;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::generator::{generate, GenConfig, GeneratedProgram, RoundKind};
    pub use crate::oracles::{
        check_generated, check_seed, oracle_append_invariance, oracle_approx_bound,
        oracle_bit_reproducibility, oracle_kernel_axioms, oracle_nd0_seed_invariance,
        oracle_replay_zero_distance, oracle_schedule_exhaustiveness, oracle_thread_invariance,
        OracleSummary,
    };
    pub use crate::validate::{validate_replay_alignment, validate_trace, ValidationReport};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use anacin_mpisim::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0, 1, 7, 0xDEAD_BEEF] {
            let a = generate(&GenConfig::from_seed(seed));
            let b = generate(&GenConfig::from_seed(seed));
            assert_eq!(a.program.world_size(), b.program.world_size());
            assert_eq!(a.round_kinds, b.round_kinds);
            assert_eq!(a.chaotic_ranks, b.chaotic_ranks);
            for r in 0..a.program.world_size() {
                assert_eq!(a.program.ops(Rank(r)), b.program.ops(Rank(r)));
            }
        }
    }

    #[test]
    fn generated_programs_are_statically_clean() {
        for seed in 0..40 {
            let gp = generate(&GenConfig::from_seed(seed));
            gp.program
                .check_balance()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            gp.program
                .check_requests()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn chaotic_ranks_only_in_pure_p2p_programs() {
        for seed in 0..200 {
            let gp = generate(&GenConfig::from_seed(seed));
            if !gp.chaotic_ranks.is_empty() {
                assert!(
                    gp.round_kinds.iter().all(|k| *k == RoundKind::PointToPoint),
                    "seed {seed}: chaotic ranks in a program with collectives/exchanges"
                );
            }
        }
    }

    #[test]
    fn config_clamps_out_of_range_values() {
        let cfg = GenConfig {
            world_size: 99,
            rounds: 100,
            max_sends: 0,
            wildcard_prob: 2.0,
            nonblocking_prob: -1.0,
            collective_prob: 0.0,
            exchange_prob: 0.0,
            chaos_prob: 0.0,
            seed: 5,
        };
        let gp = generate(&cfg);
        assert_eq!(gp.program.world_size(), 16);
        assert_eq!(gp.round_kinds.len(), 8);
        check_generated(&gp).unwrap();
    }

    #[test]
    fn full_battery_over_a_seed_range() {
        for seed in 0..12 {
            let summary = check_seed(seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(summary.kernel_pairs > 0);
        }
    }

    #[test]
    fn validator_rejects_cross_program_traces() {
        // A trace from one program must not validate against a different
        // program's op counts.
        let a = generate(&GenConfig::from_seed(3));
        let b = generate(&GenConfig::from_seed(4));
        let t = simulate(&a.program, &SimConfig::deterministic()).unwrap();
        assert!(validate_trace(&a.program, &t).is_ok());
        assert!(validate_trace(&b.program, &t).is_err());
    }

    /// Nightly-tier sweep: thousands of generated programs through the
    /// full battery. A 20k-seed run of this sweep is what surfaced the
    /// ssend-to-chaotic-rank deadlock documented in [`crate::generator`].
    #[test]
    #[ignore = "minutes-long sweep; run with `cargo test --release -- --ignored`"]
    fn stress_sweep_five_thousand_seeds() {
        for seed in 0..5000u64 {
            check_seed(seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    /// Nightly-tier exhaustiveness sweep: 500 small generated programs,
    /// each checked under [`oracle_schedule_exhaustiveness`] — a complete
    /// `mpisim::explore` enumeration must contain the schedule of every
    /// sampled run, and explored schedules must replay to themselves.
    /// Programs whose walk truncates are skipped (and counted, so the
    /// sweep fails loudly if it stops asserting anything at all).
    #[test]
    #[ignore = "nightly sweep; run with `cargo test --release -- --ignored`"]
    fn nightly_schedule_exhaustiveness_sweep() {
        let mut truncated = 0usize;
        for seed in 0..500u64 {
            // Small pure-p2p shapes: big enough to race, small enough
            // that the default budgets enumerate completely.
            let cfg = GenConfig {
                world_size: 2 + (seed % 3) as u32,
                rounds: 1 + (seed / 3 % 2) as u32,
                max_sends: 1 + (seed / 7 % 2) as u32,
                wildcard_prob: (seed % 11) as f64 / 10.0,
                nonblocking_prob: (seed % 7) as f64 / 6.0,
                collective_prob: 0.0,
                exchange_prob: 0.0,
                chaos_prob: if seed % 5 == 0 { 0.3 } else { 0.0 },
                seed,
            };
            let gp = generate(&cfg);
            let sample: Vec<u64> = (0..20)
                .map(|i| seed.wrapping_mul(31).wrapping_add(i))
                .collect();
            match oracle_schedule_exhaustiveness(&gp.program, &sample, &ExploreConfig::default()) {
                Ok(Some(_)) => {}
                Ok(None) => truncated += 1,
                Err(e) => panic!("seed {seed}: {e}"),
            }
        }
        assert!(
            truncated < 250,
            "{truncated}/500 programs truncated — the sweep is asserting too little"
        );
    }

    #[test]
    fn replay_alignment_catches_foreign_records() {
        // Align a replayed trace against the record of a *different* run:
        // with 100% ND on a wildcard-heavy program this must eventually
        // disagree (differential sanity that the checker can fail at all).
        let mut disagreed = false;
        for seed in 0..50 {
            let gp = generate(&GenConfig::from_seed(seed));
            let t1 = simulate(&gp.program, &SimConfig::with_nd_percent(100.0, 1)).unwrap();
            let t2 = simulate(&gp.program, &SimConfig::with_nd_percent(100.0, 2)).unwrap();
            let rec1 = anacin_mpisim::replay::MatchRecord::from_trace(&t1);
            if validate_replay_alignment(&t2, &rec1).is_err() {
                disagreed = true;
                break;
            }
        }
        assert!(disagreed, "no seed produced divergent free runs");
    }
}
