//! Seeded random generation of arbitrary-but-terminating MPI programs.
//!
//! The generator is the fuzzing front end of the deterministic-simulation
//! harness: from one `u64` seed it derives a complete [`Program`] — a
//! random DAG of sends, receives (blocking/nonblocking, wildcard/specific),
//! waits, computes, pairwise exchanges and collectives across 2–16 ranks —
//! that is *guaranteed to terminate* under the simulator. Termination is by
//! construction, not by timeout, so a deadlock found downstream is always a
//! simulator bug, never a generator artifact.
//!
//! # Why generated programs cannot deadlock
//!
//! Programs are sequences of *rounds*. Within a point-to-point round every
//! rank issues all of its sends before any of its receives, per-round tags
//! isolate matching between rounds, and receive counts equal inbound send
//! counts per `(receiver, round)`. Induction over rounds then gives
//! progress: once every rank finishes round `k-1`, every round-`k` message
//! is injected (eager sends and `isend`s inject immediately; `ssend`
//! injects at issue and only *completes* late), so every round-`k` receive
//! is satisfiable and every rank finishes round `k`. The non-obvious
//! constraints that keep the induction sound:
//!
//! * a rank issues at most one `ssend` per round, as its **last** send,
//!   never to a rank that also `ssend`s in that round and never to a
//!   chaotic rank (whose deferred matching could park the rendezvous
//!   behind its own later `ssend`) — so the rendezvous "waits-for"
//!   relation is acyclic and its sinks always drain;
//! * within one `(receiver, round)` the receives are either **all**
//!   source-wildcards or **all** source-specific — mixing lets a wildcard
//!   steal a message a later specific receive needs;
//! * fully wild receives (`MPI_ANY_SOURCE` + `MPI_ANY_TAG`) ignore the
//!   round-tag isolation, so a rank using them must use them for **every**
//!   receive it posts, and such "chaotic" ranks only appear in programs
//!   with no collectives or exchanges (whose internal messages a tag
//!   wildcard could steal);
//! * no self-`ssend` (a rank cannot rendezvous with itself), and no
//!   self-sends at all for simplicity.
//!
//! Collective rounds reuse `anacin_mpisim::collectives` (dissemination
//! barrier, binomial trees), which are deadlock-free classics; exchange
//! rounds pair ranks with `sendrecv`, the textbook deadlock-free idiom.

use anacin_mpisim::collectives;
use anacin_mpisim::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Knobs of the random program generator.
///
/// Every field is derivable from a single seed via [`GenConfig::from_seed`],
/// which is the form the property suites use; the CLI exposes the
/// individual knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    /// Number of ranks (clamped to 2..=16).
    pub world_size: u32,
    /// Number of rounds (clamped to 1..=8).
    pub rounds: u32,
    /// Maximum sends per rank per point-to-point round (clamped to 1..=4).
    pub max_sends: u32,
    /// Probability that a `(receiver, round)` uses source wildcards.
    pub wildcard_prob: f64,
    /// Probability that a send/receive is nonblocking.
    pub nonblocking_prob: f64,
    /// Probability that a round is a collective instead of point-to-point.
    pub collective_prob: f64,
    /// Probability that a round is a pairwise `sendrecv` exchange.
    pub exchange_prob: f64,
    /// Probability that a rank is "chaotic": all its receives are posted
    /// with both source and tag wildcards. Only effective in programs
    /// without collectives/exchanges.
    pub chaos_prob: f64,
    /// RNG seed for all structural draws.
    pub seed: u64,
}

impl GenConfig {
    /// Derive a full configuration from one seed, covering the whole
    /// supported parameter space (2–16 ranks, mixed op kinds).
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
        // One program in four is pure point-to-point, which is the only
        // shape that admits chaotic ranks; the rest mix in collectives and
        // exchanges.
        let pure_p2p = rng.gen_bool(0.25);
        GenConfig {
            world_size: rng.gen_range(2..=16),
            rounds: rng.gen_range(1..=6),
            max_sends: rng.gen_range(1..=3),
            wildcard_prob: rng.gen_range(0.0..=1.0),
            nonblocking_prob: rng.gen_range(0.0..=0.8),
            collective_prob: if pure_p2p { 0.0 } else { 0.25 },
            exchange_prob: if pure_p2p { 0.0 } else { 0.2 },
            chaos_prob: if pure_p2p { 0.3 } else { 0.0 },
            seed,
        }
    }

    fn clamped(&self) -> GenConfig {
        GenConfig {
            world_size: self.world_size.clamp(2, 16),
            rounds: self.rounds.clamp(1, 8),
            max_sends: self.max_sends.clamp(1, 4),
            wildcard_prob: self.wildcard_prob.clamp(0.0, 1.0),
            nonblocking_prob: self.nonblocking_prob.clamp(0.0, 1.0),
            collective_prob: self.collective_prob.clamp(0.0, 1.0),
            exchange_prob: self.exchange_prob.clamp(0.0, 1.0),
            chaos_prob: self.chaos_prob.clamp(0.0, 1.0),
            seed: self.seed,
        }
    }
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig::from_seed(0)
    }
}

/// What a generated round contains (reported for diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundKind {
    /// Random point-to-point traffic.
    PointToPoint,
    /// A whole-world collective (barrier/bcast/reduce/allreduce).
    Collective,
    /// Pairwise `sendrecv` exchange.
    Exchange,
}

/// A generated program plus the structural facts the validator needs.
#[derive(Debug)]
pub struct GeneratedProgram {
    /// The runnable program.
    pub program: Program,
    /// The configuration that produced it.
    pub config: GenConfig,
    /// The kind of each round, in order.
    pub round_kinds: Vec<RoundKind>,
    /// Ranks whose receives are all fully wild (source + tag).
    pub chaotic_ranks: Vec<Rank>,
}

/// Generate a deadlock-free random program from `cfg`.
///
/// The same configuration always yields the same program (the generator is
/// a pure function of `cfg`), which the differential oracles rely on.
pub fn generate(cfg: &GenConfig) -> GeneratedProgram {
    let cfg = cfg.clamped();
    let n = cfg.world_size;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut b = ProgramBuilder::new(n);

    // Chaotic ranks are only sound when every message in the program is
    // point-to-point user traffic (tag wildcards would steal collective and
    // exchange messages).
    let pure_p2p = cfg.collective_prob == 0.0 && cfg.exchange_prob == 0.0;
    let chaotic: Vec<bool> = (0..n)
        .map(|_| pure_p2p && rng.gen_bool(cfg.chaos_prob))
        .collect();

    let mut round_kinds = Vec::new();
    let mut collective_instance = 0i32;
    for round in 0..cfg.rounds {
        let draw: f64 = rng.gen_range(0.0..1.0);
        if draw < cfg.collective_prob {
            emit_collective_round(&mut b, &mut rng, n, &mut collective_instance);
            round_kinds.push(RoundKind::Collective);
        } else if draw < cfg.collective_prob + cfg.exchange_prob {
            emit_exchange_round(&mut b, &mut rng, n, round);
            round_kinds.push(RoundKind::Exchange);
        } else {
            emit_p2p_round(&mut b, &mut rng, &cfg, round, &chaotic);
            round_kinds.push(RoundKind::PointToPoint);
        }
    }

    let program = b.build();
    debug_assert!(program.check_balance().is_ok());
    debug_assert!(program.check_requests().is_ok());
    GeneratedProgram {
        program,
        config: cfg,
        round_kinds,
        chaotic_ranks: chaotic
            .iter()
            .enumerate()
            .filter(|(_, &c)| c)
            .map(|(r, _)| Rank(r as u32))
            .collect(),
    }
}

/// Tag used by point-to-point/exchange traffic of one round. Stays far
/// below `collectives`' reserved tag space.
fn round_tag(round: u32) -> Tag {
    Tag(round as i32)
}

fn emit_p2p_round(
    b: &mut ProgramBuilder,
    rng: &mut SmallRng,
    cfg: &GenConfig,
    round: u32,
    chaotic: &[bool],
) {
    let n = cfg.world_size;
    let tag = round_tag(round);

    // 1. Draw the traffic matrix: for each rank a multiset of destinations,
    //    already in issue order (ranks never send to themselves).
    let sends: Vec<Vec<Rank>> = (0..n)
        .map(|r| {
            let count = rng.gen_range(0..=cfg.max_sends);
            let mut dsts: Vec<Rank> = (0..count)
                .map(|_| {
                    let d = rng.gen_range(0..n - 1);
                    Rank(if d >= r { d + 1 } else { d })
                })
                .collect();
            shuffle(rng, &mut dsts);
            dsts
        })
        .collect();

    // 2. Elect ssend-ers: at most one ssend per rank (its last send), and
    //    an ssend's destination must not itself ssend this round, keeping
    //    the rendezvous waits-for relation acyclic. A chaotic destination
    //    is also ruled out: its ANY/ANY receives may match later-round
    //    messages first, deferring the rendezvous past its own next-round
    //    ssend — a cross-round waits-for cycle (observed as a deadlock at
    //    generator seed 2196 before this constraint existed).
    let mut is_ssender = vec![false; n as usize];
    let mut is_ssend_target = vec![false; n as usize];
    for r in 0..n as usize {
        if let Some(&dst) = sends[r].last() {
            if rng.gen_bool(0.25)
                && !is_ssender[dst.index()]
                && !is_ssend_target[r]
                && !chaotic[dst.index()]
            {
                is_ssender[r] = true;
                is_ssend_target[dst.index()] = true;
            }
        }
    }

    // 3. Send sections: mix Send/Isend, the elected ssend last.
    for r in 0..n {
        let my = sends[r as usize].clone();
        let mut rb = b.rank(Rank(r));
        rb.push_frame(format!("round_{round}"));
        if rng.gen_bool(0.3) {
            rb.compute(rng.gen_range(10..500));
        }
        let eager = my.len() - usize::from(is_ssender[r as usize]);
        let mut pending = Vec::new();
        for &dst in &my[..eager] {
            let bytes = rng.gen_range(1..=4096);
            if rng.gen_bool(cfg.nonblocking_prob) {
                pending.push(rb.isend(dst, tag, bytes));
            } else {
                rb.send(dst, tag, bytes);
            }
        }
        if is_ssender[r as usize] {
            rb.ssend(*my.last().unwrap(), tag, rng.gen_range(1..=4096));
        }
        if !pending.is_empty() {
            if pending.len() > 1 && rng.gen_bool(0.5) {
                rb.waitall(pending);
            } else {
                for req in pending {
                    rb.wait(req);
                }
            }
        }
        rb.pop_frame();
    }

    // 4. Receive sections: per receiver exactly as many receives as inbound
    //    messages, all-wildcard or all-specific per the soundness rules.
    let mut inbound: Vec<Vec<Rank>> = vec![Vec::new(); n as usize];
    for (src, dsts) in sends.iter().enumerate() {
        for &dst in dsts {
            inbound[dst.index()].push(Rank(src as u32));
        }
    }
    for r in 0..n {
        let mut srcs = std::mem::take(&mut inbound[r as usize]);
        if srcs.is_empty() {
            continue;
        }
        shuffle(rng, &mut srcs);
        let fully_wild = chaotic[r as usize];
        let wildcard = fully_wild || rng.gen_bool(cfg.wildcard_prob);
        let nonblocking = rng.gen_bool(cfg.nonblocking_prob);
        let mut rb = b.rank(Rank(r));
        rb.push_frame(format!("round_{round}"));
        let mut pending = Vec::new();
        for &src in &srcs {
            let spec = if fully_wild {
                TagSpec::Any
            } else {
                TagSpec::Tag(tag)
            };
            match (wildcard, nonblocking) {
                (true, true) => pending.push(rb.irecv_any(spec)),
                (true, false) => {
                    rb.recv_any(spec);
                }
                (false, true) => pending.push(rb.irecv(src, spec)),
                (false, false) => {
                    rb.recv(src, spec);
                }
            }
        }
        if !pending.is_empty() {
            if rng.gen_bool(0.5) {
                rb.waitall(pending);
            } else {
                // Waiting in a shuffled order exercises the post-ordinal
                // vs. completion-order bookkeeping.
                shuffle(rng, &mut pending);
                for req in pending {
                    rb.wait(req);
                }
            }
        }
        rb.pop_frame();
    }
}

fn emit_collective_round(b: &mut ProgramBuilder, rng: &mut SmallRng, n: u32, instance: &mut i32) {
    let root = Rank(rng.gen_range(0..n));
    let bytes = rng.gen_range(1..=4096);
    match rng.gen_range(0..4) {
        0 => collectives::barrier(b, n, *instance),
        1 => collectives::broadcast(b, n, root, bytes, *instance),
        2 => collectives::reduce(b, n, root, bytes, *instance),
        _ => collectives::allreduce(b, n, bytes, *instance),
    }
    *instance += 1;
}

fn emit_exchange_round(b: &mut ProgramBuilder, rng: &mut SmallRng, n: u32, round: u32) {
    let tag = round_tag(round);
    let mut ranks: Vec<u32> = (0..n).collect();
    shuffle(rng, &mut ranks);
    // Pair consecutive entries; an odd rank out sits the round out.
    for pair in ranks.chunks_exact(2) {
        let (a, z) = (Rank(pair[0]), Rank(pair[1]));
        let bytes = rng.gen_range(1..=4096);
        b.rank(a).scoped(format!("exchange_{round}"), |rb| {
            rb.sendrecv(z, z, tag, bytes);
        });
        b.rank(z).scoped(format!("exchange_{round}"), |rb| {
            rb.sendrecv(a, a, tag, bytes);
        });
    }
}

/// Fisher–Yates shuffle (the stand-in `rand` has no `SliceRandom`).
fn shuffle<T>(rng: &mut SmallRng, xs: &mut [T]) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}
