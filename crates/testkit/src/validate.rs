//! Structural invariants every simulator trace must satisfy.
//!
//! The validator is the harness's universal postcondition: whatever random
//! program the generator produced and whatever ND level the network was
//! configured with, the resulting trace must pass every check here. The
//! checks are deliberately independent of the generator (they take any
//! `(Program, Trace)` pair), so they also guard traces from the
//! mini-applications and from replayed runs.

use anacin_event_graph::algo::is_dag;
use anacin_event_graph::lamport::{lamport_times, verify_lamport};
use anacin_event_graph::EventGraph;
use anacin_mpisim::prelude::*;
use anacin_mpisim::replay::MatchRecord;
use anacin_mpisim::trace::{EventId, EventKind};
use std::collections::{HashMap, HashSet};

/// Counts gathered while validating, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ValidationReport {
    /// Events across all ranks.
    pub events: usize,
    /// Messages (send/recv pairs) verified.
    pub messages: usize,
    /// Receives posted with a wildcard.
    pub wildcard_recvs: usize,
    /// Edges whose Lamport ordering was checked.
    pub lamport_edges: usize,
}

/// Check every structural invariant of `trace` against its `program`.
///
/// Invariants, in order:
/// 1. internal linkage (`Trace::validate`): every receive points at the
///    send that produced its message;
/// 2. rank framing: per rank, exactly one `Init` (first) and one
///    `Finalize` (last), with non-decreasing event times;
/// 3. message conservation: send/receive event counts equal the program's
///    op counts, no message is lost (`unmatched_messages == 0`), no two
///    receives consume the same send, and per channel the observed
///    sequence numbers are exactly `0..k`;
/// 4. replay bookkeeping: each rank's receive `post_ordinal`s form a
///    permutation of `0..recv_count`;
/// 5. causal sanity: the event graph is a DAG and Lamport timestamps
///    strictly increase along every program-order and message edge.
pub fn validate_trace(program: &Program, trace: &Trace) -> Result<ValidationReport, String> {
    if trace.world_size() != program.world_size() {
        return Err(format!(
            "world size mismatch: program {} vs trace {}",
            program.world_size(),
            trace.world_size()
        ));
    }

    // 1. Receive→send linkage.
    let linked = trace.validate()?;

    // 2. Per-rank framing and time monotonicity.
    for r in 0..trace.world_size() {
        let rank = Rank(r);
        let evs = trace.rank_events(rank);
        if evs.is_empty() {
            return Err(format!("{rank} has no events"));
        }
        if !matches!(evs.first().unwrap().kind, EventKind::Init) {
            return Err(format!("{rank} does not start with Init"));
        }
        if !matches!(evs.last().unwrap().kind, EventKind::Finalize) {
            return Err(format!("{rank} does not end with Finalize"));
        }
        let inner = &evs[1..evs.len() - 1];
        if inner
            .iter()
            .any(|e| matches!(e.kind, EventKind::Init | EventKind::Finalize))
        {
            return Err(format!("{rank} has Init/Finalize in the interior"));
        }
        for w in evs.windows(2) {
            if w[1].time < w[0].time {
                return Err(format!(
                    "{rank} event times regress: {:?} then {:?}",
                    w[0].time, w[1].time
                ));
            }
        }
    }

    // 3. Message conservation.
    let mut sends = 0usize;
    let mut recvs = 0usize;
    let mut wildcard_recvs = 0usize;
    let mut consumed: HashSet<EventId> = HashSet::new();
    let mut sent_seqs: HashMap<(Rank, Rank), Vec<u64>> = HashMap::new();
    let mut recv_seqs: HashMap<(Rank, Rank), Vec<u64>> = HashMap::new();
    for (id, e) in trace.iter() {
        match e.kind {
            EventKind::Send { dst, seq, .. } => {
                sends += 1;
                sent_seqs.entry((id.rank, dst)).or_default().push(seq.0);
            }
            EventKind::Recv {
                src,
                seq,
                send_event,
                wildcard,
                ..
            } => {
                recvs += 1;
                wildcard_recvs += usize::from(wildcard);
                recv_seqs.entry((src, id.rank)).or_default().push(seq.0);
                if !consumed.insert(send_event) {
                    return Err(format!(
                        "send {send_event:?} consumed by more than one receive"
                    ));
                }
            }
            _ => {}
        }
    }
    if sends != program.total_sends() {
        return Err(format!(
            "trace has {sends} sends, program issues {}",
            program.total_sends()
        ));
    }
    if recvs != program.total_receives() {
        return Err(format!(
            "trace has {recvs} receives, program posts {}",
            program.total_receives()
        ));
    }
    if linked != recvs {
        return Err(format!(
            "linkage checked {linked} receives, trace has {recvs}"
        ));
    }
    if trace.meta.unmatched_messages != 0 {
        return Err(format!(
            "{} message(s) were never received",
            trace.meta.unmatched_messages
        ));
    }
    if trace.meta.messages != sends as u64 {
        return Err(format!(
            "meta reports {} messages, trace has {sends} sends",
            trace.meta.messages
        ));
    }
    for (channel, seqs) in &mut sent_seqs {
        seqs.sort_unstable();
        if seqs.iter().enumerate().any(|(i, &s)| s != i as u64) {
            return Err(format!(
                "channel {channel:?} send seqs are not 0..{}: {seqs:?}",
                seqs.len()
            ));
        }
        let mut got = recv_seqs.remove(channel).unwrap_or_default();
        got.sort_unstable();
        if got != *seqs {
            return Err(format!(
                "channel {channel:?} receives {got:?} do not cover sends {seqs:?}"
            ));
        }
    }
    if let Some(extra) = recv_seqs.keys().next() {
        return Err(format!("receives on channel {extra:?} with no sends"));
    }

    // 4. Post-ordinals are a permutation of 0..recv_count per rank.
    for r in 0..trace.world_size() {
        let rank = Rank(r);
        let mut ordinals: Vec<u32> = trace
            .rank_events(rank)
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Recv { post_ordinal, .. } => Some(post_ordinal),
                _ => None,
            })
            .collect();
        ordinals.sort_unstable();
        if ordinals.iter().enumerate().any(|(i, &o)| o != i as u32) {
            return Err(format!(
                "{rank} receive post-ordinals are not a permutation: {ordinals:?}"
            ));
        }
    }

    // 5. Causal sanity via the event graph.
    let g = EventGraph::from_trace(trace);
    if !is_dag(&g) {
        return Err("event graph has a cycle".to_string());
    }
    let ts = lamport_times(&g);
    let lamport_edges = verify_lamport(&g, &ts)
        .map_err(|(a, b)| format!("Lamport time does not increase along edge {a:?} -> {b:?}"))?;

    Ok(ValidationReport {
        events: trace.total_events(),
        messages: sends,
        wildcard_recvs,
        lamport_edges,
    })
}

/// Check that a replayed trace honoured `record`: the receive posted
/// `ordinal`-th on each rank matched exactly the recorded `(src, seq)`.
pub fn validate_replay_alignment(replayed: &Trace, record: &MatchRecord) -> Result<usize, String> {
    let mut checked = 0;
    for r in 0..replayed.world_size() {
        let rank = Rank(r);
        for e in replayed.rank_events(rank) {
            if let EventKind::Recv {
                src,
                seq,
                post_ordinal,
                ..
            } = e.kind
            {
                match record.matched(rank, post_ordinal as usize) {
                    Some((want_src, want_seq)) => {
                        if (src, seq) != (want_src, want_seq) {
                            return Err(format!(
                                "{rank} receive #{post_ordinal} matched ({src}, {}) \
                                 but the record says ({want_src}, {})",
                                seq.0, want_seq.0
                            ));
                        }
                    }
                    None => {
                        return Err(format!(
                            "{rank} receive #{post_ordinal} has no recorded decision"
                        ))
                    }
                }
                checked += 1;
            }
        }
    }
    Ok(checked)
}
