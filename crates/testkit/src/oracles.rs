//! Differential and metamorphic oracles over the simulator pipeline.
//!
//! An *oracle* here is a property that must hold for **every** program the
//! generator can produce, at **every** non-determinism level — so the
//! harness never needs a known-good output to compare against:
//!
//! * **bit reproducibility** — the simulator is a pure function of
//!   `(program, config)`: the same seed yields the identical trace;
//! * **seed invariance at 0% ND** — with non-determinism off, the seed
//!   must not matter: all seeds give the same match order and zero kernel
//!   distance;
//! * **replay collapses ND to zero** — recording one run's matching
//!   decisions and replaying them under fresh seeds must reproduce the
//!   recorded match order exactly and give zero kernel distance, at any ND
//!   level (the paper's ReMPI demonstration, promoted to a law);
//! * **kernel-distance axioms** — for every kernel in `anacin-kernels`,
//!   `d(g, g) = 0`, `d(g, h) = d(h, g)`, `d(g, h) >= 0`;
//! * **thread invariance** — Gram matrices are identical whatever worker
//!   thread count computed them;
//! * **schedule exhaustiveness** — a complete `mpisim::explore`
//!   enumeration contains the schedule realised by every sampled run, and
//!   explored schedules replay through the engine to their own ids.

use crate::generator::{generate, GenConfig, GeneratedProgram};
use crate::validate::{validate_replay_alignment, validate_trace, ValidationReport};
use anacin_event_graph::EventGraph;
use anacin_kernels::prelude::*;
use anacin_mpisim::prelude::*;
use anacin_mpisim::replay::MatchRecord;

/// Kernel-distance equality tolerance. Most feature maps are
/// integer-counted and exact, but the graphlet kernel's sampled
/// frequencies leave `sqrt`-of-epsilon residue in self-distances
/// (~1.5e-8 observed), so the tolerance sits comfortably above that.
const TOL: f64 = 1e-6;

/// All kernels under test, boxed once.
fn all_kernels() -> Vec<(&'static str, Box<dyn GraphKernel>)> {
    vec![
        ("wl", Box::new(WlKernel::default())),
        (
            "vertex-histogram",
            Box::new(VertexHistogramKernel::default()),
        ),
        ("edge-histogram", Box::new(EdgeHistogramKernel::default())),
        ("shortest-path", Box::new(ShortestPathKernel::default())),
        ("graphlet", Box::new(GraphletKernel::default())),
    ]
}

fn sim(p: &Program, nd: f64, seed: u64) -> Result<Trace, String> {
    simulate(p, &SimConfig::with_nd_percent(nd, seed))
        .map_err(|e| format!("simulate(nd={nd}, seed={seed}) failed: {e:?}"))
}

fn traces_identical(a: &Trace, b: &Trace) -> bool {
    (0..a.world_size()).all(|r| a.rank_events(Rank(r)) == b.rank_events(Rank(r)))
        && a.meta.makespan == b.meta.makespan
}

/// Same program, same config, twice: the traces must be identical events,
/// times and all.
pub fn oracle_bit_reproducibility(p: &Program, nd: f64, seed: u64) -> Result<(), String> {
    let a = sim(p, nd, seed)?;
    let b = sim(p, nd, seed)?;
    if !traces_identical(&a, &b) {
        return Err(format!(
            "two simulations with nd={nd} seed={seed} produced different traces"
        ));
    }
    Ok(())
}

/// At 0% ND the seed must be irrelevant: identical match orders and zero
/// kernel distance across all `seeds`.
pub fn oracle_nd0_seed_invariance(p: &Program, seeds: &[u64]) -> Result<(), String> {
    let base = sim(p, 0.0, seeds[0])?;
    let base_graph = EventGraph::from_trace(&base);
    let wl = WlKernel::default();
    for &seed in &seeds[1..] {
        let t = sim(p, 0.0, seed)?;
        for r in 0..p.world_size() {
            if t.match_order(Rank(r)) != base.match_order(Rank(r)) {
                return Err(format!(
                    "0% ND but seeds {} and {seed} disagree on rank {r}'s match order",
                    seeds[0]
                ));
            }
        }
        let d = distance(&wl, &base_graph, &EventGraph::from_trace(&t));
        if d > TOL {
            return Err(format!(
                "0% ND but seeds {} and {seed} are {d} apart in WL kernel distance",
                seeds[0]
            ));
        }
    }
    Ok(())
}

/// Record one run at `nd`, replay it under each of `replay_seeds`: the
/// replayed trace must align with the record receive-for-receive and sit at
/// zero kernel distance from the recorded run.
pub fn oracle_replay_zero_distance(
    p: &Program,
    nd: f64,
    record_seed: u64,
    replay_seeds: &[u64],
) -> Result<usize, String> {
    let recorded = sim(p, nd, record_seed)?;
    let record = MatchRecord::from_trace(&recorded);
    let recorded_graph = EventGraph::from_trace(&recorded);
    let wl = WlKernel::default();
    let mut checked = 0;
    for &seed in replay_seeds {
        let replayed = simulate_replay(p, &SimConfig::with_nd_percent(nd, seed), &record)
            .map_err(|e| format!("replay under seed {seed} failed: {e:?}"))?;
        checked += validate_replay_alignment(&replayed, &record)?;
        for r in 0..p.world_size() {
            if replayed.match_order(Rank(r)) != recorded.match_order(Rank(r)) {
                return Err(format!(
                    "replay under seed {seed} changed rank {r}'s match order"
                ));
            }
        }
        let d = distance(&wl, &recorded_graph, &EventGraph::from_trace(&replayed));
        if d > TOL {
            return Err(format!(
                "replay under seed {seed} left WL kernel distance {d}, expected 0"
            ));
        }
    }
    Ok(checked)
}

/// The kernel-distance axioms — identity, symmetry, non-negativity — for
/// every kernel in `anacin-kernels`, over every pair in `graphs`.
pub fn oracle_kernel_axioms(graphs: &[EventGraph]) -> Result<usize, String> {
    let mut checked = 0;
    for (name, k) in all_kernels() {
        for (i, g) in graphs.iter().enumerate() {
            let self_d = distance(k.as_ref(), g, g);
            if self_d.is_nan() || self_d.abs() > TOL {
                return Err(format!("{name}: d(g{i}, g{i}) = {self_d}, expected 0"));
            }
            for (j, h) in graphs.iter().enumerate().skip(i + 1) {
                let gh = distance(k.as_ref(), g, h);
                let hg = distance(k.as_ref(), h, g);
                if !gh.is_finite() || gh < 0.0 {
                    return Err(format!("{name}: d(g{i}, g{j}) = {gh}, not a distance"));
                }
                if (gh - hg).abs() > TOL {
                    return Err(format!(
                        "{name}: d(g{i}, g{j}) = {gh} but d(g{j}, g{i}) = {hg}"
                    ));
                }
                checked += 1;
            }
        }
    }
    Ok(checked)
}

/// A complete schedule-space enumeration contains the schedule realised
/// by **every** sampled run — `mpisim::explore` is exhaustive, not just
/// sound. Returns `Ok(None)` when a budget truncated the walk (nothing
/// can be asserted about an incomplete set), otherwise `Ok(Some(n))`
/// with the size of the enumerated space. Seeds whose free run deadlocks
/// are skipped: the oracle constrains only runs that complete.
pub fn oracle_schedule_exhaustiveness(
    p: &Program,
    seeds: &[u64],
    xcfg: &ExploreConfig,
) -> Result<Option<usize>, String> {
    let report = explore(p, xcfg);
    if !report.is_complete() {
        return Ok(None);
    }
    let ids: std::collections::HashSet<u64> = report.schedules.iter().map(|s| s.id().0).collect();
    for &seed in seeds {
        let Ok(t) = simulate(p, &SimConfig::with_nd_percent(100.0, seed)) else {
            continue;
        };
        let id = Schedule::from_trace(&t).id();
        if !ids.contains(&id.0) {
            return Err(format!(
                "seed {seed} realised schedule {id} missing from a complete \
                 enumeration of {} schedule(s)",
                ids.len()
            ));
        }
    }
    // Round-trip spot check: the first explored schedule replays through
    // the real engine back to its own fingerprint.
    if let Some(s) = report.schedules.first() {
        let seed = seeds.first().copied().unwrap_or(1);
        let t = simulate_scheduled(p, &SimConfig::with_nd_percent(100.0, seed), s)
            .map_err(|e| format!("replaying an explored schedule failed: {e:?}"))?;
        let rt = Schedule::from_trace(&t).id();
        if rt != s.id() {
            return Err(format!("explored schedule {} replayed to {rt}", s.id()));
        }
    }
    Ok(Some(report.schedules.len()))
}

/// Growing a Gram matrix one run at a time with `gram_append` must be
/// bit-identical to the one-shot recompute — under both dot kinds — and
/// the appended matrix must still satisfy the distance axioms: zero
/// diagonal (a replayed run is zero distance from itself), symmetry,
/// and non-negativity.
pub fn oracle_append_invariance(graphs: &[EventGraph]) -> Result<(), String> {
    let wl = WlKernel::default();
    let feats: Vec<SparseFeatures> = graphs.iter().map(|g| wl.features(g)).collect();
    for dot in [DotKind::Scalar, DotKind::Blocked] {
        let full = gram_from_features_with_dot("wl", &feats, 2, dot, None);
        let mut grown = gram_from_features_with_dot("wl", &feats[..1], 2, dot, None);
        for upto in 2..=feats.len() {
            grown = gram_append(&grown, &feats[..upto], 2, dot, None);
        }
        for i in 0..feats.len() {
            for j in 0..feats.len() {
                if grown.value(i, j).to_bits() != full.value(i, j).to_bits() {
                    return Err(format!(
                        "gram_append({dot}) diverged from recompute at ({i},{j}): \
                         {} vs {}",
                        grown.value(i, j),
                        full.value(i, j)
                    ));
                }
            }
        }
        for i in 0..feats.len() {
            let self_d = grown.distance(i, i);
            if self_d != 0.0 {
                return Err(format!("appended gram: d({i},{i}) = {self_d}, expected 0"));
            }
            for j in i + 1..feats.len() {
                let dij = grown.distance(i, j);
                let dji = grown.distance(j, i);
                if !dij.is_finite() || dij < 0.0 || dij.to_bits() != dji.to_bits() {
                    return Err(format!(
                        "appended gram: d({i},{j}) = {dij}, d({j},{i}) = {dji}"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// The landmark approximation must stay on the right side of its
/// claims: the matrix is symmetric, the reported Frobenius bound
/// dominates the true error against the exact matrix, a full landmark
/// set reproduces the exact matrix to rounding, and a duplicated run
/// (the replay case) stays at ~zero approximate distance from its twin.
pub fn oracle_approx_bound(graphs: &[EventGraph]) -> Result<(), String> {
    let wl = WlKernel::default();
    let mut feats: Vec<SparseFeatures> = graphs.iter().map(|g| wl.features(g)).collect();
    // Duplicate the first run: an exact replay in feature space.
    feats.push(feats[0].clone());
    let n = feats.len();
    let exact = gram_from_features_with_dot("wl", &feats, 2, DotKind::Scalar, None);
    let scale: f64 = (0..n).map(|i| exact.value(i, i)).sum::<f64>().max(1.0);
    for k in [n.div_ceil(2), n] {
        let approx = landmark_gram("wl", &feats, k, 2, DotKind::Scalar, None);
        if !approx.error_bound.is_finite() || approx.error_bound < 0.0 {
            return Err(format!(
                "landmark_gram(k={k}) reported error bound {}",
                approx.error_bound
            ));
        }
        let mut err2 = 0.0;
        for i in 0..n {
            for j in 0..n {
                let asym = (approx.matrix.value(i, j) - approx.matrix.value(j, i)).abs();
                if asym > TOL * scale {
                    return Err(format!("landmark_gram(k={k}) asymmetric at ({i},{j})"));
                }
                let e = exact.value(i, j) - approx.matrix.value(i, j);
                err2 += e * e;
            }
        }
        if err2.sqrt() > approx.error_bound + TOL * scale {
            return Err(format!(
                "landmark_gram(k={k}) true error {} exceeds reported bound {}",
                err2.sqrt(),
                approx.error_bound
            ));
        }
        if k == n && err2.sqrt() > TOL * scale {
            return Err(format!(
                "full landmark set left Frobenius error {}",
                err2.sqrt()
            ));
        }
        let twin_d = approx.matrix.distance(0, n - 1).abs();
        if k == n && twin_d > TOL * scale.sqrt() {
            return Err(format!(
                "replayed run sits {twin_d} from its twin in the approximate matrix"
            ));
        }
    }
    Ok(())
}

/// Gram matrices must not depend on the worker thread count.
pub fn oracle_thread_invariance(graphs: &[EventGraph]) -> Result<(), String> {
    let wl = WlKernel::default();
    let serial = gram_matrix(&wl, graphs, 1);
    let parallel = gram_matrix(&wl, graphs, 4);
    for i in 0..graphs.len() {
        for j in 0..graphs.len() {
            if serial.value(i, j) != parallel.value(i, j) {
                return Err(format!(
                    "gram[{i}][{j}] differs across thread counts: {} vs {}",
                    serial.value(i, j),
                    parallel.value(i, j)
                ));
            }
        }
    }
    Ok(())
}

/// Everything the harness asserts about one generated program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleSummary {
    /// Validator counts from the highest-ND run.
    pub validation: ValidationReport,
    /// Receives whose replay decisions were checked against the record.
    pub replayed_receives: usize,
    /// Kernel-axiom pairs checked (per kernel).
    pub kernel_pairs: usize,
}

/// Generate the program for `seed` and run the full battery: structural
/// validation at 0/50/100% ND plus every oracle. This is the harness's
/// single-seed entry point, shared by the property suite and the CLI.
pub fn check_seed(seed: u64) -> Result<OracleSummary, String> {
    check_generated(&generate(&GenConfig::from_seed(seed)))
}

/// Run the full battery against an already generated program.
pub fn check_generated(gp: &GeneratedProgram) -> Result<OracleSummary, String> {
    let p = &gp.program;
    let seed = gp.config.seed;
    p.check_balance()
        .map_err(|e| format!("generator emitted unbalanced program: {e}"))?;
    p.check_requests()
        .map_err(|e| format!("generator emitted bad request usage: {e}"))?;

    let mut validation = ValidationReport::default();
    let mut graphs = Vec::new();
    for nd in [0.0, 50.0, 100.0] {
        let t = sim(p, nd, seed)?;
        validation = validate_trace(p, &t).map_err(|e| format!("nd={nd}: {e}"))?;
        graphs.push(EventGraph::from_trace(&t));
    }

    oracle_bit_reproducibility(p, 100.0, seed)?;
    oracle_nd0_seed_invariance(p, &[seed, seed ^ 1, seed.wrapping_add(17)])?;
    let replayed_receives =
        oracle_replay_zero_distance(p, 100.0, seed, &[seed ^ 2, seed.wrapping_add(33)])?;
    let kernel_pairs = oracle_kernel_axioms(&graphs)?;
    oracle_thread_invariance(&graphs)?;
    oracle_append_invariance(&graphs)?;
    oracle_approx_bound(&graphs)?;

    Ok(OracleSummary {
        validation,
        replayed_receives,
        kernel_pairs,
    })
}
