//! Integration tests of the CLI command surface (via the library, so no
//! subprocess spawning; stdout output is exercised but not captured).

use anacin_cli::args::Args;
use anacin_cli::commands::dispatch;

fn run(args: &[&str]) -> Result<(), String> {
    let parsed = Args::parse(args.iter().map(|s| s.to_string()))?;
    dispatch(&parsed)
}

#[test]
fn help_and_unknown_command() {
    run(&["help"]).unwrap();
    run(&[]).unwrap();
    let err = run(&["frobnicate"]).unwrap_err();
    assert!(err.contains("unknown command"));
}

#[test]
fn run_command_small_campaign() {
    run(&["run", "--pattern", "race", "--procs", "5", "--runs", "5"]).unwrap();
    run(&[
        "run",
        "--pattern",
        "amg",
        "--procs",
        "3",
        "--runs",
        "4",
        "--json",
    ])
    .unwrap();
}

#[test]
fn campaign_alias_with_metrics_report() {
    let dir = std::env::temp_dir().join("anacin_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.json");
    run(&[
        "campaign",
        "--pattern",
        "race",
        "--procs",
        "6",
        "--runs",
        "5",
        "--metrics",
        path.to_str().unwrap(),
    ])
    .unwrap();
    let json = std::fs::read_to_string(&path).unwrap();
    // Every pipeline stage appears with a recorded wall-time (the default
    // schedule is the fused kernel pipeline).
    for stage in [
        "campaign/simulate",
        "campaign/graph",
        "campaign/kernel/pipeline",
        "campaign/kernel/pipeline/features",
        "campaign/kernel/pipeline/gram",
    ] {
        assert!(json.contains(stage), "missing {stage} in {json}");
    }
    for counter in [
        "sim/events",
        "sim/matched",
        "sim/wildcard_matches",
        "kernel/dot_products",
        "kernel/pipeline_tasks",
    ] {
        assert!(json.contains(counter), "missing {counter} in {json}");
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn campaign_barrier_schedule_reports_stage_spans() {
    let dir = std::env::temp_dir().join("anacin_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics_barrier.json");
    run(&[
        "campaign",
        "--pattern",
        "race",
        "--procs",
        "6",
        "--runs",
        "5",
        "--gram-schedule",
        "barrier",
        "--metrics",
        path.to_str().unwrap(),
    ])
    .unwrap();
    let json = std::fs::read_to_string(&path).unwrap();
    for stage in ["campaign/kernel/features", "campaign/kernel/gram"] {
        assert!(json.contains(stage), "missing {stage} in {json}");
    }
    assert!(!json.contains("kernel/pipeline_tasks"), "{json}");
    std::fs::remove_file(path).ok();

    // An unknown schedule is rejected with a parse error.
    assert!(run(&[
        "campaign",
        "--pattern",
        "race",
        "--procs",
        "4",
        "--runs",
        "2",
        "--gram-schedule",
        "fused",
    ])
    .is_err());
}

#[test]
fn bench_baseline_writes_report() {
    let dir = std::env::temp_dir().join("anacin_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("baseline.json");
    run(&[
        "bench",
        "baseline",
        "--procs",
        "4",
        "--runs",
        "2",
        "--samples",
        "1",
        "--out",
        path.to_str().unwrap(),
    ])
    .unwrap();
    let json = std::fs::read_to_string(&path).unwrap();
    for field in [
        "simulate_ms",
        "graph_ms",
        "features_ms",
        "gram_ms",
        "patterns",
    ] {
        assert!(json.contains(field), "missing {field} in {json}");
    }
    std::fs::remove_file(path).ok();
    assert!(run(&["bench"]).unwrap_err().contains("action"));
}

#[test]
fn run_rejects_bad_pattern_and_values() {
    assert!(run(&["run", "--pattern", "nope"])
        .unwrap_err()
        .contains("unknown pattern"));
    assert!(run(&["run", "--procs", "three"])
        .unwrap_err()
        .contains("invalid value"));
}

#[test]
fn graph_formats() {
    for fmt in ["ascii", "dot", "graphml", "json", "svg"] {
        run(&[
            "graph",
            "--pattern",
            "race",
            "--procs",
            "4",
            "--format",
            fmt,
        ])
        .unwrap();
    }
    assert!(run(&["graph", "--format", "png"])
        .unwrap_err()
        .contains("unknown format"));
}

#[test]
fn graph_writes_file() {
    let dir = std::env::temp_dir().join("anacin_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("g.svg");
    run(&[
        "graph",
        "--pattern",
        "race",
        "--procs",
        "4",
        "--format",
        "svg",
        "--out",
        path.to_str().unwrap(),
    ])
    .unwrap();
    let svg = std::fs::read_to_string(&path).unwrap();
    assert!(svg.starts_with("<svg"));
    std::fs::remove_file(path).ok();
}

#[test]
fn distance_and_diff() {
    run(&["distance", "--pattern", "race", "--procs", "5"]).unwrap();
    run(&[
        "diff",
        "--pattern",
        "race",
        "--procs",
        "5",
        "--seed-a",
        "1",
        "--seed-b",
        "9",
    ])
    .unwrap();
}

#[test]
fn sweep_kinds() {
    run(&[
        "sweep",
        "--kind",
        "iterations",
        "--pattern",
        "race",
        "--procs",
        "4",
        "--runs",
        "4",
    ])
    .unwrap();
    assert!(run(&["sweep", "--kind", "bananas"])
        .unwrap_err()
        .contains("unknown sweep kind"));
}

#[test]
fn root_cause_runs() {
    run(&[
        "root-cause",
        "--pattern",
        "amg",
        "--procs",
        "4",
        "--runs",
        "5",
    ])
    .unwrap();
}

#[test]
fn replay_and_record_roundtrip() {
    let dir = std::env::temp_dir().join("anacin_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let rec = dir.join("rec.json");
    run(&[
        "record",
        "--pattern",
        "race",
        "--procs",
        "5",
        "--out",
        rec.to_str().unwrap(),
    ])
    .unwrap();
    run(&[
        "replay",
        "--pattern",
        "race",
        "--procs",
        "5",
        "--record",
        rec.to_str().unwrap(),
    ])
    .unwrap();
    std::fs::remove_file(rec).ok();
    assert!(run(&["record", "--pattern", "race"])
        .unwrap_err()
        .contains("--out"));
}

#[test]
fn inspect_timeline_trace() {
    run(&["inspect", "--pattern", "mesh", "--procs", "5"]).unwrap();
    run(&[
        "timeline",
        "--pattern",
        "race",
        "--procs",
        "4",
        "--nd",
        "50",
    ])
    .unwrap();
    run(&["trace", "--pattern", "race", "--procs", "3"]).unwrap();
}

#[test]
fn embed_and_heatmap() {
    run(&["embed", "--pattern", "race", "--procs", "5", "--runs", "5"]).unwrap();
    run(&[
        "heatmap",
        "--pattern",
        "race",
        "--procs",
        "5",
        "--runs",
        "5",
    ])
    .unwrap();
}

#[test]
fn exercise_catalogue_and_grading() {
    run(&["exercise"]).unwrap();
    run(&["exercise", "write-a-race"]).unwrap();
    run(&["exercise", "make-it-deterministic", "--solve"]).unwrap();
    assert!(run(&["exercise", "nope"])
        .unwrap_err()
        .contains("unknown exercise"));
}

#[test]
fn course_structure_and_levels() {
    run(&["course"]).unwrap();
    run(&["course", "--level", "a", "--answers"]).unwrap();
    assert!(run(&["course", "--level", "z"])
        .unwrap_err()
        .contains("unknown level"));
    assert!(run(&["course", "--lesson", "9"])
        .unwrap_err()
        .contains("unknown lesson"));
}

#[test]
fn reduction_command() {
    run(&["reduction", "--procs", "8", "--runs", "8"]).unwrap();
}

#[test]
fn figure_quick_artifacts() {
    // Only the cheap static figures here; the campaign-driven ones are
    // covered at quick scale by tests/paper_claims.rs.
    for id in ["tables", "1", "2", "3", "4"] {
        run(&["figure", id]).unwrap();
    }
    assert!(run(&["figure", "99"])
        .unwrap_err()
        .contains("unknown figure"));
}

#[test]
fn report_and_explain_and_ablation() {
    let dir = std::env::temp_dir().join("anacin_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("report.html");
    run(&[
        "report",
        "--pattern",
        "race",
        "--procs",
        "5",
        "--runs",
        "5",
        "--out",
        path.to_str().unwrap(),
    ])
    .unwrap();
    let html = std::fs::read_to_string(&path).unwrap();
    assert!(html.contains("<svg"));
    assert!(html.contains("Root-source call paths"));
    std::fs::remove_file(path).ok();
    run(&[
        "explain",
        "--pattern",
        "race",
        "--procs",
        "4",
        "--from",
        "1.1",
        "--to",
        "0.4",
    ])
    .unwrap();
    assert!(run(&["explain", "--from", "9.0"])
        .unwrap_err()
        .contains("rank out of range"));
    assert!(run(&["explain", "--from", "zero"])
        .unwrap_err()
        .contains("RANK.INDEX"));
    run(&[
        "ablation",
        "--pattern",
        "race",
        "--procs",
        "5",
        "--runs",
        "5",
    ])
    .unwrap();
}

#[test]
fn run_with_trace_exports_chrome_json_and_view_summarises_it() {
    let dir = std::env::temp_dir().join("anacin_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    run(&[
        "run",
        "--pattern",
        "race",
        "--procs",
        "5",
        "--runs",
        "3",
        "--trace",
        path.to_str().unwrap(),
    ])
    .unwrap();
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.contains("\"traceEvents\""));
    // One thread_name metadata track per rank, per run.
    for r in 0..5 {
        assert!(json.contains(&format!("\"name\":\"rank {r}\"")), "rank {r}");
    }
    assert!(json.contains("\"cat\":\"sim\""));
    assert!(json.contains("\"cat\":\"wall\""));
    // The file is valid JSON for the workspace parser.
    serde_json::from_str_value(&json).unwrap();
    // And `trace view` accepts it.
    run(&["trace", "view", path.to_str().unwrap()]).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(run(&["trace", "view"]).unwrap_err().contains("FILE"));
    assert!(run(&["trace", "view", "/nonexistent/trace.json"]).is_err());
}

#[test]
fn run_with_folded_trace_writes_flamegraph_stacks() {
    let dir = std::env::temp_dir().join("anacin_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.folded");
    run(&[
        "run",
        "--pattern",
        "race",
        "--procs",
        "4",
        "--runs",
        "3",
        "--trace",
        path.to_str().unwrap(),
        "--trace-capacity",
        "4096",
    ])
    .unwrap();
    let folded = std::fs::read_to_string(&path).unwrap();
    assert!(folded.contains("campaign"), "{folded}");
    for line in folded.lines() {
        let (_, weight) = line.rsplit_once(' ').expect("folded line shape");
        assert!(weight.parse::<u64>().is_ok(), "{line}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn sweep_metrics_emit_per_point_breakdown() {
    let dir = std::env::temp_dir().join("anacin_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sweep_metrics.json");
    run(&[
        "sweep",
        "--kind",
        "iterations",
        "--pattern",
        "race",
        "--procs",
        "4",
        "--runs",
        "3",
        "--metrics",
        path.to_str().unwrap(),
    ])
    .unwrap();
    let json = std::fs::read_to_string(&path).unwrap();
    let doc = serde_json::from_str_value(&json).unwrap();
    let root = doc.as_object().unwrap();
    let points = serde::map_get(root, "points").as_array().unwrap();
    assert_eq!(points.len(), 3, "one report per sweep point");
    for p in points {
        let obj = p.as_object().unwrap();
        assert_eq!(
            serde::map_get(obj, "parameter").as_str(),
            Some("iterations")
        );
        assert!(serde::map_get(obj, "label").as_str().is_some());
        let report = serde::map_get(obj, "report").as_object().unwrap();
        assert!(!serde::map_get(report, "spans")
            .as_array()
            .unwrap()
            .is_empty());
    }
    assert!(serde::map_get(root, "aggregate").as_object().is_some());
    std::fs::remove_file(&path).ok();
}

#[test]
fn run_with_store_warms_and_store_subcommands_operate() {
    let dir = std::env::temp_dir().join("anacin_cli_store_test");
    std::fs::remove_dir_all(&dir).ok();
    let store = dir.join("store");
    let store = store.to_str().unwrap();
    let campaign = &[
        "run",
        "--pattern",
        "race",
        "--procs",
        "4",
        "--runs",
        "3",
        "--store",
        store,
    ];
    run(campaign).unwrap(); // cold: publishes every artifact
    run(campaign).unwrap(); // warm: everything served from the store
    run(&["store", "stats", "--store", store]).unwrap();
    run(&["store", "verify", "--store", store]).unwrap();
    run(&["store", "gc", "--store", store, "--budget", "1000000000"]).unwrap();
    assert!(run(&["store", "stats"]).unwrap_err().contains("--store"));
    assert!(run(&["store", "--store", store])
        .unwrap_err()
        .contains("action"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_with_store_runs_and_rejects_trace_combination() {
    let dir = std::env::temp_dir().join("anacin_cli_store_sweep_test");
    std::fs::remove_dir_all(&dir).ok();
    let store = dir.join("store");
    let store = store.to_str().unwrap();
    run(&[
        "sweep",
        "--kind",
        "iterations",
        "--pattern",
        "race",
        "--procs",
        "4",
        "--runs",
        "3",
        "--store",
        store,
    ])
    .unwrap();
    assert!(run(&[
        "sweep",
        "--kind",
        "iterations",
        "--store",
        store,
        "--trace",
        "/tmp/t.json",
    ])
    .unwrap_err()
    .contains("cannot be combined"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_view_summarises_folded_files() {
    let dir = std::env::temp_dir().join("anacin_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("view.folded");
    std::fs::write(
        &path,
        "campaign;simulate 9000\ncampaign;graph 600\ncampaign 400\n",
    )
    .unwrap();
    run(&["trace", "view", path.to_str().unwrap()]).unwrap();
    std::fs::write(&path, "no-trailing-weight\n").unwrap();
    assert!(run(&["trace", "view", path.to_str().unwrap()]).is_err());
    std::fs::write(&path, "").unwrap();
    assert!(run(&["trace", "view", path.to_str().unwrap()]).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn course_agenda_and_related_work() {
    run(&["course", "--agenda"]).unwrap();
    run(&["course", "--related-work"]).unwrap();
}

#[test]
fn testkit_gen_and_check() {
    run(&["testkit", "gen", "--seed", "7"]).unwrap();
    run(&[
        "testkit", "gen", "--seed", "7", "--procs", "4", "--rounds", "2",
    ])
    .unwrap();
    run(&["testkit", "check", "--seed", "0", "--count", "2"]).unwrap();
    assert!(run(&["testkit"]).unwrap_err().contains("action"));
    assert!(run(&["testkit", "gen", "--procs", "many"])
        .unwrap_err()
        .contains("invalid value"));
}
