//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed arguments: a subcommand plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    options: HashMap<String, String>,
}

impl Args {
    /// Parse from an iterator of arguments (excluding argv\[0\]).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = args.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = match it.peek() {
                    Some(v) if !v.starts_with("--") => it.next().unwrap(),
                    _ => "true".to_string(),
                };
                out.options.insert(key.to_string(), value);
            } else if out.command.is_none() {
                out.command = Some(a);
            } else {
                out.positional.push(a);
            }
        }
        Ok(out)
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A string option with a default.
    pub fn get_or(&self, key: &str, default: &str) -> String {
        self.get(key).unwrap_or(default).to_string()
    }

    /// A parsed numeric/typed option with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }

    /// A boolean flag (present without value, or `--key true`).
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true") | Some("1") | Some("yes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn command_and_options() {
        let a = parse(&["run", "--pattern", "amg2013", "--procs", "8", "--verbose"]);
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.get("pattern"), Some("amg2013"));
        assert_eq!(a.get_parsed("procs", 0u32).unwrap(), 8);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn positional_arguments() {
        let a = parse(&["figure", "7", "--runs", "5"]);
        assert_eq!(a.command.as_deref(), Some("figure"));
        assert_eq!(a.positional, vec!["7"]);
    }

    #[test]
    fn defaults_and_errors() {
        let a = parse(&["run"]);
        assert_eq!(a.get_or("pattern", "race"), "race");
        assert_eq!(a.get_parsed("procs", 4u32).unwrap(), 4);
        let bad = parse(&["run", "--procs", "eight"]);
        assert!(bad.get_parsed("procs", 4u32).is_err());
    }
}
