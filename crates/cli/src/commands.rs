//! Subcommand implementations.

use crate::args::Args;
use anacin_bench::{by_id, Scale, ALL_IDS};
use anacin_core::prelude::*;
use anacin_course::prelude::*;
use anacin_event_graph::{export, EventGraph};
use anacin_kernels::prelude::*;
use anacin_miniapps::{MiniAppConfig, Pattern};
use anacin_mpisim::prelude::*;
use anacin_obs::{MetricsRegistry, Tracer};
use anacin_store::ArtifactStore;
use anacin_viz::{ascii, svg};
use serde::Serialize;
use std::io::Write as _;

const HELP: &str = "\
anacin — analysis of non-determinism in message-passing applications

USAGE: anacin <command> [options]

COMMANDS
  run         run a measurement campaign ('campaign' is an alias)
              --pattern race|amg2013|mesh|collectives  --procs N  --nd P
              --runs N  --iterations N  --nodes N  --seed S  [--json]
              [--gram-schedule barrier|pipelined]  kernel-stage schedule
                                (default pipelined; results bit-identical)
              [--dot scalar|blocked]  sparse-dot inner loop (default scalar;
                                blocked is faster and bit-identical)
              [--gram-approx exact|landmarks=K]  opt-in Nystrom approximation
                                of the Gram matrix from K landmark runs
                                (R*K dots instead of R^2/2); reports a
                                Frobenius error bound and never publishes
                                approximate matrices to the store
              [--append-to DIR]  grow a stored campaign: reuse the largest
                                 stored Gram prefix of this run set and
                                 compute only the new rows/columns (R+1
                                 dots per added run); byte-identical to a
                                 cold --store run of the same config
              [--metrics FILE]  write a pipeline metrics report (JSON) and
                                print a per-stage summary table to stderr
              [--trace FILE[.json|.folded]]  record an execution trace:
                                Chrome Trace Event JSON (Perfetto) or
                                folded flamegraph stacks (inferno);
                                with --stream the file is written
                                incrementally as the ring drains, so
                                tracing adds O(1) memory at any scale
              [--trace-capacity N]  trace ring size in events (default 262144)
              [--progress]  live one-line status on stderr (runs done,
                            events simulated, hottest stage, ETA)
              [--store DIR]  run incrementally against a content-addressed
                             artifact store: reuse every stored trace/graph/
                             feature vector, publish what was recomputed
              [--stream]  bounded-memory campaign: drop each run's trace and
                          graph once its features exist (1024-rank scale);
                          measurement bit-identical to the default path
                          (incompatible with --store and --explore)
              [--explore]  also enumerate the schedule space (partial-order
                           reduced DFS), replay every distinct schedule and
                           report the true worst-case distance + how much
                           of the space the sample covered
              [--schedule-budget N]  explored-schedule cap (default 4096)
  explore     schedule-space enumeration statistics
              anacin explore stats --pattern … --procs N [--iterations N]
              [--schedule-budget N] [--brute-force] [--json] [--metrics FILE]
  graph       render one run's event graph
              --pattern … --procs N --nd P --seed S
              --format ascii|dot|graphml|json|svg  [--out FILE]
  distance    kernel distance between two runs
              --pattern … --procs N --nd P --seed-a A --seed-b B
  sweep       parameter sweep
              --kind nd|procs|iterations  --pattern … --procs N --runs N
              [--metrics FILE]  per-point metrics breakdown + merged
                                aggregate (JSON {aggregate, points})
              [--trace FILE[.json|.folded]] [--trace-capacity N]
              [--store DIR]  run every sweep point incrementally (see run)
  serve       campaign service daemon: accept jobs from many clients over
              a socket, run them on one worker pool against one shared
              warm store (client B warm-hits client A's runs)
              [--socket PATH]  Unix socket to listen on (default anacin.sock)
              [--listen ADDR]  listen on TCP host:port instead
              [--store DIR]    shared artifact store (default anacin-serve-store)
              [--workers N]    worker pool size (default: cores, max 4)
              [--queue-capacity N]  admission queue bound (default 64)
              [--job-timeout MS]    cancel jobs running longer than MS
              [--metrics FILE]      write serve counters (JSON) on shutdown
              SIGINT/SIGTERM drain: admitted jobs finish, new ones refused
  client      submit one job to a running daemon and print its result
              (stdout is byte-identical to the local command)
              --socket PATH | --connect ADDR   where the daemon listens
              [--job campaign|sweep|explore|append]  job kind (default
                               campaign; append grows the server's stored
                               prefix of the run set)
              plus the matching run/sweep options (--pattern --procs --nd
              --runs --kind --schedule-budget --brute-force …)
              [--retries N]    resubmit up to N times when the server answers
                               Busy, sleeping its suggested backoff between
                               attempts (default 3)
              [--peer NAME]    client name in server logs
              [--stats FILE]   write store hit/miss/put counts (JSON)
              progress frames stream to stderr while the job runs
  store       artifact-store maintenance
              anacin store stats  --store DIR   size/count per artifact kind
              anacin store verify --store DIR   checksum every artifact
              anacin store gc     --store DIR --budget BYTES  evict oldest
  bench       performance baselines
              anacin bench baseline [--procs N] [--runs N] [--samples N]
              [--out FILE]  (default BENCH_baseline.json)
              anacin bench baseline --scale large  1024-rank streaming
              tier: per-stage timings + peak RSS + trace overhead
              → BENCH_large.json
              [--procs N] [--runs N] [--iterations N] [--out FILE]
              anacin bench trend DIR  regression gate over per-commit
              BENCH*.json reports: newest vs trailing median per stage,
              non-zero exit when flagged
              [--threshold PCT] [--window N] [--json]
  root-cause  callstack ranking for a campaign
              --pattern … --procs N --runs N  [--slices K] [--top FRAC]
  replay      record/replay demonstration (ReMPI-style)
              --pattern … --procs N --seed S
  figure      regenerate a paper artifact: tables, 1..8 or all
              anacin figure 7 [--paper-scale] [--out-dir DIR]
  embed       2-D MDS embedding of a run sample in kernel space
              --pattern … --procs N --nd P --runs N  [--out FILE.svg]
  diff        race report: which receives matched differently in two runs
              --pattern … --procs N --nd P --seed-a A --seed-b B
  heatmap     pairwise kernel-distance heatmap over a run sample
              --pattern … --procs N --runs N  [--out FILE.svg]
  reduction   numerical reproducibility of arrival-order reductions
              --procs N --nd P --runs N
  ablation    compare kernels' ability to measure ND on one sample
              --pattern … --procs N --runs N
  report      one-file HTML report of a campaign (violins, heatmap,
              embedding, root causes) — … --out report.html
  explain     shortest happens-before chain between two events
              --pattern … --procs N --nd P --seed S
              --from RANK.IDX --to RANK.IDX
  exercise    list exercises, or grade the reference/broken solutions
              anacin exercise [ID] [--solve]
  inspect     structural profile of one run: traffic matrix, wildcard
              exposure — --pattern … --procs N --nd P --seed S
  timeline    per-rank Gantt view of one run
              --pattern … --procs N --nd P --seed S  [--out FILE.svg]
  trace       export one run's trace as JSON — … [--out FILE]
              anacin trace view FILE  summarise a recorded trace:
              Chrome JSON (per-rank event counts, busiest rank, longest
              gap, top spans) or .folded (top stacks by self-time);
              Chrome files stream line-by-line, so multi-GB traces
              summarise in constant memory
  record      save a run's matching decisions — … --out FILE
              (feed back with: replay --record FILE)
  course      print the course module; --lesson 1..4 runs a use case
              [--level a|b|c] [--answers] [--agenda] [--related-work]
  testkit     random-program test harness
              testkit gen --seed S [--procs N --rounds R] [--out FILE]
              testkit check --seed S [--count N]
  help        this message
";

/// Dispatch a parsed command line.
pub fn dispatch(args: &Args) -> Result<(), String> {
    match args.command.as_deref() {
        None | Some("help") => {
            println!("{HELP}");
            Ok(())
        }
        Some("run") | Some("campaign") => cmd_run(args),
        Some("explore") => cmd_explore(args),
        Some("serve") => cmd_serve(args),
        Some("client") => cmd_client(args),
        Some("store") => cmd_store(args),
        Some("bench") => cmd_bench(args),
        Some("graph") => cmd_graph(args),
        Some("distance") => cmd_distance(args),
        Some("sweep") => cmd_sweep(args),
        Some("root-cause") => cmd_root_cause(args),
        Some("replay") => cmd_replay(args),
        Some("figure") => cmd_figure(args),
        Some("embed") => cmd_embed(args),
        Some("diff") => cmd_diff(args),
        Some("heatmap") => cmd_heatmap(args),
        Some("reduction") => cmd_reduction(args),
        Some("ablation") => cmd_ablation(args),
        Some("report") => cmd_report(args),
        Some("explain") => cmd_explain(args),
        Some("exercise") => cmd_exercise(args),
        Some("inspect") => cmd_inspect(args),
        Some("timeline") => cmd_timeline(args),
        Some("trace") => cmd_trace(args),
        Some("record") => cmd_record(args),
        Some("course") => cmd_course(args),
        Some("testkit") => cmd_testkit(args),
        Some(other) => Err(format!("unknown command '{other}'; try 'anacin help'")),
    }
}

fn pattern_of(args: &Args) -> Result<Pattern, String> {
    args.get_or("pattern", "message-race")
        .parse::<Pattern>()
        .map_err(|e| e.to_string())
}

fn campaign_of(args: &Args) -> Result<CampaignConfig, String> {
    let pattern = pattern_of(args)?;
    let procs: u32 = args.get_parsed("procs", 8)?;
    let mut cfg = CampaignConfig::new(pattern, procs)
        .nd_percent(args.get_parsed("nd", 100.0)?)
        .runs(args.get_parsed("runs", 20)?)
        .iterations(args.get_parsed("iterations", 1u32)?)
        .nodes(args.get_parsed("nodes", 1u32)?)
        .base_seed(args.get_parsed("seed", 1u64)?);
    if let Some(s) = args.get("gram-schedule") {
        cfg = cfg.schedule(s.parse()?);
    }
    if let Some(s) = args.get("dot") {
        cfg = cfg.dot(s.parse()?);
    }
    if let Some(s) = args.get("gram-approx") {
        cfg = cfg.approx(s.parse()?);
    }
    cfg.app.message_bytes = args.get_parsed("bytes", 1u64)?;
    Ok(cfg)
}

/// When `--metrics FILE` was given: a fresh registry plus its target path.
fn metrics_of(args: &Args) -> Option<(String, MetricsRegistry)> {
    args.get("metrics")
        .map(|p| (p.to_string(), MetricsRegistry::new()))
}

/// When `--trace FILE` was given: a fresh tracer (ring capacity from
/// `--trace-capacity`, default 262144 events) plus its target path.
fn tracer_of(args: &Args) -> Result<Option<(String, Tracer)>, String> {
    match args.get("trace") {
        Some(path) => {
            let capacity: usize =
                args.get_parsed("trace-capacity", anacin_obs::DEFAULT_CAPACITY)?;
            Ok(Some((path.to_string(), Tracer::with_capacity(capacity))))
        }
        None => Ok(None),
    }
}

/// Export a tracer's snapshot: `.folded` paths get flamegraph folded
/// stacks, everything else Chrome Trace Event JSON (Perfetto-loadable).
fn write_trace(path: &str, tracer: &Tracer) -> Result<(), String> {
    let snap = tracer.snapshot();
    let content = if path.ends_with(".folded") {
        snap.folded_stacks()
    } else {
        snap.chrome_trace(true)
    };
    std::fs::write(path, content).map_err(|e| e.to_string())?;
    eprintln!(
        "trace written to {path} ({} events recorded, {} dropped)",
        snap.recorded, snap.dropped
    );
    Ok(())
}

/// Attach an incremental file sink to `tracer`: `.folded` paths stream
/// flamegraph stacks, everything else Chrome Trace Event JSON. Records
/// are drained to disk as the ring is pumped, so memory stays bounded
/// by one drain chunk however long the campaign runs.
fn attach_file_sink(path: &str, tracer: &Tracer) -> Result<(), String> {
    if path.ends_with(".folded") {
        let sink = anacin_obs::FoldedSink::create(path)
            .map_err(|e| format!("cannot create {path}: {e}"))?;
        tracer.attach_sink(Box::new(sink));
    } else {
        let sink = anacin_obs::ChromeJsonSink::create(path)
            .map_err(|e| format!("cannot create {path}: {e}"))?;
        tracer.attach_sink(Box::new(sink));
    }
    Ok(())
}

/// Drain whatever the pump has not yet delivered, close the sink's
/// document, and report the drain accounting.
fn finish_file_sink(path: &str, tracer: &Tracer) -> Result<(), String> {
    let stats = tracer
        .finish_sink()
        .map_err(|e| format!("streaming trace to {path} failed: {e}"))?;
    eprintln!(
        "trace streamed to {path} ({} event(s) written, {} lost to ring overflow)",
        stats.drained, stats.lost
    );
    Ok(())
}

/// Write the registry's report as pretty JSON and print the per-stage
/// summary table to stderr (stderr so `--json` stdout stays parseable).
fn write_metrics(path: &str, reg: &MetricsRegistry) -> Result<(), String> {
    let report = reg.report();
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| e.to_string())?;
    eprint!("{}", report.render_table());
    eprintln!("metrics report written to {path}");
    Ok(())
}

/// The explore bounds a command line asked for.
fn explore_config_of(args: &Args) -> Result<ExploreConfig, String> {
    let mut xcfg = ExploreConfig::with_budget(args.get_parsed("schedule-budget", 4096usize)?);
    if args.flag("brute-force") {
        xcfg = xcfg.brute_force();
    }
    Ok(xcfg)
}

/// Unpack a cancellable pipeline's outcome: completed results pass
/// through, a genuine failure becomes the command error, and a SIGINT
/// cancellation becomes `Ok(None)` so the caller can flush whatever
/// sinks are open before exiting non-zero.
fn until_cancelled<T, E: std::fmt::Display>(
    r: Result<T, Interrupted<E>>,
) -> Result<Option<T>, String> {
    match r {
        Ok(v) => Ok(Some(v)),
        Err(Interrupted::Cancelled { completed_runs }) => {
            eprintln!("interrupted: stopping after {completed_runs} completed run(s)");
            Ok(None)
        }
        Err(Interrupted::Failed(e)) => Err(e.to_string()),
    }
}

/// The error a cancelled command exits with (non-zero, code 2).
fn interrupted_err() -> String {
    "interrupted by signal; partial output flushed".to_string()
}

/// `run --stream`: the bounded-memory campaign path. Each run's trace and
/// graph are dropped as soon as its feature vector exists, so the
/// measurement fits in a per-worker footprint at 1024-rank scale. The
/// printed measurement (and `--json` payload) is byte-identical to the
/// materialised path's: the matrix is bit-identical by construction.
fn cmd_run_streaming(args: &Args) -> Result<(), String> {
    if args.get("store").is_some() || args.get("append-to").is_some() {
        return Err(
            "--stream keeps no traces or graphs to publish; drop --stream or --store/--append-to"
                .into(),
        );
    }
    if args.flag("explore") {
        return Err(
            "--explore compares coverage against the materialised sample; drop --stream or --explore"
                .into(),
        );
    }
    let cfg = campaign_of(args)?;
    let metrics = metrics_of(args);
    let tracer = tracer_of(args)?;
    let progress = args.flag("progress");
    let reg = match (&metrics, &tracer) {
        (Some((_, reg)), _) => Some(reg.clone()),
        (None, Some(_)) => Some(MetricsRegistry::new()),
        (None, None) if progress => Some(MetricsRegistry::new()),
        (None, None) => None,
    };
    if let (Some(reg), Some((_, t))) = (&reg, &tracer) {
        reg.attach_tracer(t);
    }
    // Streamed runs never materialise a full trace, so the exporter
    // can't either: attach an incremental file sink that the simulator
    // pumps records into as they are recorded, keeping the exporter's
    // footprint at one drain chunk regardless of campaign size.
    if let Some((path, t)) = &tracer {
        attach_file_sink(path, t)?;
    }
    let reporter = reg.as_ref().filter(|_| progress).map(|reg| {
        anacin_obs::ProgressReporter::start(
            reg,
            cfg.runs as u64,
            std::time::Duration::from_millis(250),
        )
    });
    let token = anacin_obs::install_signal_handlers();
    let result = run_campaign_streaming_cancellable(
        &cfg,
        reg.as_ref(),
        tracer.as_ref().map(|(_, t)| t),
        0,
        Some(&token),
    );
    if let Some(r) = reporter {
        r.finish();
    }
    let result = until_cancelled(result)?;
    if let Some((path, reg)) = &metrics {
        write_metrics(path, reg)?;
    }
    if let Some((path, t)) = &tracer {
        finish_file_sink(path, t)?;
    }
    let result = result.ok_or_else(interrupted_err)?;
    let m = NdMeasurement::from_matrix(campaign_label(&cfg), &result.matrix);
    if args.flag("json") {
        let rep = MeasurementReport::from(&m);
        let json = anacin_core::report::to_json(&rep).map_err(|e| e.to_string())?;
        println!("{json}");
        return Ok(());
    }
    println!(
        "pattern={} procs={} nd={}% runs={} iterations={}",
        cfg.pattern, cfg.app.procs, cfg.nd_percent, cfg.runs, cfg.app.iterations
    );
    println!(
        "kernel distance over {} run pairs: mean={:.4} median={:.4} std={:.4}",
        m.distances.len(),
        m.summary.mean,
        m.summary.median,
        m.summary.std_dev
    );
    eprintln!(
        "streamed {} run(s): {} simulated event(s), {} graph node(s) (peak ≈ per-worker)",
        cfg.runs, result.total_events, result.total_nodes
    );
    if let Some(v) = m.violin() {
        print!("{}", ascii::violins(&[v], 48));
    }
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    if args.flag("stream") {
        return cmd_run_streaming(args);
    }
    let cfg = campaign_of(args)?;
    let metrics = metrics_of(args);
    let tracer = tracer_of(args)?;
    let progress = args.flag("progress");
    // Tracing needs a registry for wall-clock spans even when no metrics
    // file was requested; spin up an internal one in that case. The
    // live progress line reads the same registry.
    let reg = match (&metrics, &tracer) {
        (Some((_, reg)), _) => Some(reg.clone()),
        (None, Some(_)) => Some(MetricsRegistry::new()),
        (None, None) if progress => Some(MetricsRegistry::new()),
        (None, None) => None,
    };
    if let (Some(reg), Some((_, t))) = (&reg, &tracer) {
        reg.attach_tracer(t);
    }
    // `--append-to DIR` is `--store DIR` plus the append schedule: the
    // largest stored Gram prefix of this run set is grown row-by-row
    // (R+1 dots per added run) instead of recomputed from scratch.
    let append = args.get("append-to").is_some();
    if append && args.get("store").is_some() {
        return Err("--append-to already names the store; drop --store or --append-to".into());
    }
    let store = match args.get("store").or_else(|| args.get("append-to")) {
        Some(dir) => {
            let store = ArtifactStore::open(dir).map_err(|e| e.to_string())?;
            if let Some(reg) = &reg {
                store.attach_metrics(reg);
            }
            Some((dir.to_string(), store))
        }
        None => None,
    };
    let reporter = reg.as_ref().filter(|_| progress).map(|reg| {
        anacin_obs::ProgressReporter::start(
            reg,
            cfg.runs as u64,
            std::time::Duration::from_millis(250),
        )
    });
    let token = anacin_obs::install_signal_handlers();
    let result = match &store {
        Some((_, store)) if append => until_cancelled(run_campaign_append_cancellable(
            &cfg,
            store,
            reg.as_ref(),
            tracer.as_ref().map(|(_, t)| t),
            0,
            Some(&token),
        )),
        Some((_, store)) => until_cancelled(run_campaign_incremental_cancellable(
            &cfg,
            store,
            reg.as_ref(),
            tracer.as_ref().map(|(_, t)| t),
            0,
            Some(&token),
        )),
        None => until_cancelled(run_campaign_cancellable(
            &cfg,
            reg.as_ref(),
            tracer.as_ref().map(|(_, t)| t),
            0,
            Some(&token),
        )),
    };
    if let Some(r) = reporter {
        r.finish();
    }
    let result = result?;
    // SIGINT: flush every open sink (metrics file, trace file, store
    // activity line) before exiting non-zero, so an interrupted campaign
    // still leaves its partial observability artifacts behind.
    let result = match result {
        Some(r) => r,
        None => {
            if let Some((dir, store)) = &store {
                let a = store.activity();
                eprintln!(
                    "store {dir}: {} hit(s), {} miss(es), {} publish(es)",
                    a.hits, a.misses, a.puts
                );
            }
            if let Some((path, reg)) = &metrics {
                write_metrics(path, reg)?;
            }
            if let Some((path, t)) = &tracer {
                write_trace(path, t)?;
            }
            return Err(interrupted_err());
        }
    };
    // `--explore`: enumerate the schedule space of the same setting and
    // relate the sample to it (worst case, coverage, containment).
    let explored = if args.flag("explore") {
        let xcfg = explore_config_of(args)?;
        let xr = match &store {
            Some((_, store)) => {
                explore_campaign_incremental_observed(&cfg, &xcfg, store, reg.as_ref())
                    .map_err(|e| e.to_string())?
            }
            None => {
                explore_campaign_observed(&cfg, &xcfg, reg.as_ref()).map_err(|e| e.to_string())?
            }
        };
        let coverage = xr.coverage_of(&result);
        Some((xcfg, xr, coverage))
    } else {
        None
    };
    if let Some((dir, store)) = &store {
        let a = store.activity();
        eprintln!(
            "store {dir}: {} hit(s), {} miss(es), {} publish(es)",
            a.hits, a.misses, a.puts
        );
    }
    if let Some((path, reg)) = &metrics {
        write_metrics(path, reg)?;
    }
    if let Some((path, t)) = &tracer {
        write_trace(path, t)?;
    }
    let m = NdMeasurement::from_campaign(campaign_label(&cfg), &result);
    if args.flag("json") {
        // Both arms go through `anacin_core::report` so the daemon can
        // reproduce this payload byte-for-byte (the serve crate's
        // acceptance oracle).
        let json = match &explored {
            Some((xcfg, xr, coverage)) => anacin_core::report::to_json(&RunWithExploreReport {
                measurement: MeasurementReport::from(&m),
                explore: ExploreSection {
                    config: *xcfg,
                    stats: xr.report.stats,
                    coverage: *coverage,
                },
            })
            .map_err(|e| e.to_string())?,
            None => measurement_json(&cfg, &result.matrix).map_err(|e| e.to_string())?,
        };
        println!("{json}");
        return Ok(());
    }
    println!(
        "pattern={} procs={} nd={}% runs={} iterations={}",
        cfg.pattern, cfg.app.procs, cfg.nd_percent, cfg.runs, cfg.app.iterations
    );
    println!(
        "kernel distance over {} run pairs: mean={:.4} median={:.4} std={:.4}",
        m.distances.len(),
        m.summary.mean,
        m.summary.median,
        m.summary.std_dev
    );
    if let Some(v) = m.violin() {
        print!("{}", ascii::violins(&[v], 48));
    }
    if let Some((xcfg, xr, cov)) = &explored {
        let st = &xr.report.stats;
        println!(
            "explored {} distinct schedule(s) ({}) — branches={} pruned={} deadlocks={}",
            st.schedules,
            if xr.report.is_complete() {
                "complete enumeration".to_string()
            } else {
                format!("truncated at budget {}", xcfg.max_schedules)
            },
            st.branches,
            st.pruned + st.dropped,
            st.deadlocks
        );
        println!(
            "schedule coverage: sample hit {}/{} schedule(s) over {} run(s) ({:.0}%)",
            cov.overlap,
            cov.explored,
            cov.sampled_runs,
            cov.fraction * 100.0
        );
        println!(
            "worst case: sampled max={:.4}, explored max={:.4}{}{}",
            cov.sampled_max,
            cov.explored_max,
            if cov.complete {
                " (true worst case)"
            } else {
                " (lower bound)"
            },
            // Containment is only an oracle when the walk was complete;
            // under a budget, samples landing outside the set is expected.
            if cov.covered {
                ""
            } else if cov.complete {
                " — CONTAINMENT VIOLATED: a sampled schedule escaped the enumeration"
            } else {
                " — sample reached schedules beyond the truncated enumeration"
            }
        );
    }
    Ok(())
}

/// `explore stats --json` payload: setting, bounds, and walk statistics.
#[derive(Serialize)]
struct ExploreStatsReport {
    pattern: String,
    procs: u32,
    iterations: u32,
    config: ExploreConfig,
    complete: bool,
    stats: ExploreStats,
    schedule_ids: Vec<String>,
}

fn cmd_explore(args: &Args) -> Result<(), String> {
    match args.positional.first().map(String::as_str) {
        Some("stats") => {
            let pattern = pattern_of(args)?;
            let mut app = MiniAppConfig::with_procs(args.get_parsed("procs", 4)?);
            app.iterations = args.get_parsed("iterations", 1u32)?;
            let program = pattern.build(&app);
            let xcfg = explore_config_of(args)?;
            let metrics = metrics_of(args);
            let report = explore_observed(&program, &xcfg, metrics.as_ref().map(|(_, r)| r));
            if let Some((path, reg)) = &metrics {
                write_metrics(path, reg)?;
            }
            if args.flag("json") {
                let rep = ExploreStatsReport {
                    pattern: pattern.to_string(),
                    procs: app.procs,
                    iterations: app.iterations,
                    config: xcfg,
                    complete: report.is_complete(),
                    stats: report.stats,
                    schedule_ids: report.ids().iter().map(|id| id.to_string()).collect(),
                };
                println!(
                    "{}",
                    anacin_core::report::to_json(&rep).map_err(|e| e.to_string())?
                );
                return Ok(());
            }
            let st = &report.stats;
            println!(
                "pattern={} procs={} iterations={} prune={}",
                pattern, app.procs, app.iterations, xcfg.prune
            );
            println!(
                "schedule space: {} distinct schedule(s) ({})",
                st.schedules,
                if report.is_complete() {
                    "complete enumeration"
                } else {
                    "truncated — counts are lower bounds"
                }
            );
            println!(
                "branches={} pruned={} dropped={} terminals={} deadlocks={}",
                st.branches, st.pruned, st.dropped, st.terminals, st.deadlocks
            );
            Ok(())
        }
        _ => Err("explore requires an action: 'stats'".to_string()),
    }
}

fn single_graph(args: &Args) -> Result<EventGraph, String> {
    let pattern = pattern_of(args)?;
    let mut app = MiniAppConfig::with_procs(args.get_parsed("procs", 4)?);
    app.iterations = args.get_parsed("iterations", 1u32)?;
    let program = pattern.build(&app);
    let sim =
        SimConfig::with_nd_percent(args.get_parsed("nd", 0.0)?, args.get_parsed("seed", 1u64)?);
    let t = simulate(&program, &sim).map_err(|e| e.to_string())?;
    Ok(EventGraph::from_trace(&t))
}

fn write_out(args: &Args, content: &str) -> Result<(), String> {
    match args.get("out") {
        Some(path) => {
            let mut f = std::fs::File::create(path).map_err(|e| e.to_string())?;
            f.write_all(content.as_bytes()).map_err(|e| e.to_string())?;
            println!("wrote {path}");
            Ok(())
        }
        None => {
            println!("{content}");
            Ok(())
        }
    }
}

fn cmd_graph(args: &Args) -> Result<(), String> {
    let g = single_graph(args)?;
    let rendered = match args.get_or("format", "ascii").as_str() {
        "ascii" => ascii::event_graph_lanes(&g),
        "dot" => export::to_dot(&g),
        "graphml" => export::to_graphml(&g),
        "json" => export::to_json(&g).map_err(|e| e.to_string())?,
        "svg" => svg::event_graph_svg(&g, "event graph"),
        other => return Err(format!("unknown format '{other}'")),
    };
    write_out(args, &rendered)
}

fn cmd_distance(args: &Args) -> Result<(), String> {
    let pattern = pattern_of(args)?;
    let app = MiniAppConfig::with_procs(args.get_parsed("procs", 4)?);
    let program = pattern.build(&app);
    let nd = args.get_parsed("nd", 100.0)?;
    let seed_a = args.get_parsed("seed-a", 1u64)?;
    let seed_b = args.get_parsed("seed-b", 2u64)?;
    let ta =
        simulate(&program, &SimConfig::with_nd_percent(nd, seed_a)).map_err(|e| e.to_string())?;
    let tb =
        simulate(&program, &SimConfig::with_nd_percent(nd, seed_b)).map_err(|e| e.to_string())?;
    let ga = EventGraph::from_trace(&ta);
    let gb = EventGraph::from_trace(&tb);
    let k = WlKernel::default();
    let d = distance(&k, &ga, &gb);
    println!(
        "kernel={} distance(seed {seed_a}, seed {seed_b}) = {d:.4}",
        k.name()
    );
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let base = campaign_of(args)?;
    let metrics_path = args.get("metrics").map(str::to_string);
    let tracer = tracer_of(args)?;
    let tr = tracer.as_ref().map(|(_, t)| t);
    let kind = args.get_or("kind", "nd");
    let token = anacin_obs::install_signal_handlers();
    if let Some(dir) = args.get("store") {
        // Store-backed sweeps use one registry for the whole sweep (the
        // per-point instrumented path is not combined with --store).
        if tracer.is_some() {
            return Err("--store and --trace cannot be combined on sweep".to_string());
        }
        let store = ArtifactStore::open(dir).map_err(|e| e.to_string())?;
        let reg = metrics_path.as_ref().map(|_| MetricsRegistry::new());
        if let Some(r) = &reg {
            store.attach_metrics(r);
        }
        let cancel = Some(&token);
        let sweep = until_cancelled(match kind.as_str() {
            "nd" => {
                let percents: Vec<f64> = (0..=10).map(|i| i as f64 * 10.0).collect();
                sweep_nd_percent_stored_cancellable(&base, &percents, &store, reg.as_ref(), cancel)
            }
            "procs" => {
                let p = base.app.procs;
                sweep_procs_stored_cancellable(
                    &base,
                    &[(p / 2).max(2), p, p * 2],
                    &store,
                    reg.as_ref(),
                    cancel,
                )
            }
            "iterations" => {
                sweep_iterations_stored_cancellable(&base, &[1, 2, 4], &store, reg.as_ref(), cancel)
            }
            other => return Err(format!("unknown sweep kind '{other}'")),
        })?;
        if let (Some(path), Some(r)) = (&metrics_path, &reg) {
            write_metrics(path, r)?;
        }
        let a = store.activity();
        eprintln!(
            "store {dir}: {} hit(s), {} miss(es), {} publish(es)",
            a.hits, a.misses, a.puts
        );
        // A cancelled stored sweep has already published every finished
        // run, so the next invocation resumes warm; report and exit 2.
        let sweep = sweep.ok_or_else(interrupted_err)?;
        print!("{}", sweep_text(&sweep));
        return Ok(());
    }
    let cancel = Some(&token);
    let instrumented = metrics_path.is_some() || tracer.is_some();
    let sweep = if instrumented {
        // Instrumented path: per-point registries so stage time can be
        // plotted against the swept parameter, plus optional tracing.
        let both = until_cancelled(match kind.as_str() {
            "nd" => {
                let percents: Vec<f64> = (0..=10).map(|i| i as f64 * 10.0).collect();
                sweep_nd_percent_instrumented_cancellable(&base, &percents, tr, cancel)
            }
            "procs" => {
                let p = base.app.procs;
                sweep_procs_instrumented_cancellable(&base, &[(p / 2).max(2), p, p * 2], tr, cancel)
            }
            "iterations" => {
                sweep_iterations_instrumented_cancellable(&base, &[1, 2, 4], tr, cancel)
            }
            other => return Err(format!("unknown sweep kind '{other}'")),
        })?;
        let Some((sweep, sm)) = both else {
            // Flush the trace sink before exiting non-zero: the partial
            // per-run timeline is exactly what a user hunting a hang wants.
            if let Some((path, t)) = &tracer {
                write_trace(path, t)?;
            }
            return Err(interrupted_err());
        };
        if let Some(path) = &metrics_path {
            let json = serde_json::to_string_pretty(&sm).map_err(|e| e.to_string())?;
            std::fs::write(path, json).map_err(|e| e.to_string())?;
            eprint!("{}", sm.aggregate.render_table());
            eprintln!(
                "metrics report written to {path} ({} sweep points)",
                sm.points.len()
            );
        }
        sweep
    } else {
        until_cancelled(match kind.as_str() {
            "nd" => {
                let percents: Vec<f64> = (0..=10).map(|i| i as f64 * 10.0).collect();
                sweep_nd_percent_cancellable(&base, &percents, None, cancel)
            }
            "procs" => {
                let p = base.app.procs;
                sweep_procs_cancellable(&base, &[(p / 2).max(2), p, p * 2], None, cancel)
            }
            "iterations" => sweep_iterations_cancellable(&base, &[1, 2, 4], None, cancel),
            other => return Err(format!("unknown sweep kind '{other}'")),
        })?
        .ok_or_else(interrupted_err)?
    };
    if let Some((path, t)) = &tracer {
        write_trace(path, t)?;
    }
    print!("{}", sweep_text(&sweep));
    Ok(())
}

/// `anacin serve`: run the campaign service daemon until SIGINT/SIGTERM,
/// then drain — admitted jobs finish and deliver their results, new
/// submissions are refused — and print the serve counters.
fn cmd_serve(args: &Args) -> Result<(), String> {
    use anacin_serve::{Server, ServerConfig};
    let store_dir = args.get_or("store", "anacin-serve-store");
    let mut cfg = ServerConfig::new(&store_dir)
        .queue_capacity(args.get_parsed("queue-capacity", 64usize)?)
        .progress_interval(std::time::Duration::from_millis(
            args.get_parsed("progress-interval", 250u64)?,
        ));
    if let Some(w) = args.get("workers") {
        let n: usize = w
            .parse()
            .map_err(|_| format!("invalid value '{w}' for --workers"))?;
        cfg = cfg.workers(n);
    }
    if let Some(t) = args.get("job-timeout") {
        let ms: u64 = t
            .parse()
            .map_err(|_| format!("invalid value '{t}' for --job-timeout"))?;
        cfg = cfg.job_timeout(std::time::Duration::from_millis(ms));
    }
    let handle = match args.get("listen") {
        Some(addr) => {
            let server = Server::bind_tcp(addr, cfg).map_err(|e| e.to_string())?;
            let bound = server
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|| addr.to_string());
            eprintln!("anacin serve: listening on tcp {bound} (store {store_dir})");
            server.spawn()
        }
        None => {
            let socket = args.get_or("socket", "anacin.sock");
            let server = Server::bind_unix(&socket, cfg).map_err(|e| e.to_string())?;
            eprintln!("anacin serve: listening on {socket} (store {store_dir})");
            server.spawn()
        }
    };
    let _token = anacin_obs::install_signal_handlers();
    while !anacin_obs::shutdown_requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("anacin serve: draining — finishing admitted jobs, refusing new ones");
    let report = handle.join();
    eprint!("{}", report.render_table());
    if let Some(path) = args.get("metrics") {
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        eprintln!("serve metrics written to {path}");
    }
    Ok(())
}

/// `--stats FILE` payload for `anacin client`: how the shared store
/// treated this job (CI asserts cross-client warm hits from it).
#[derive(Serialize)]
struct ClientStats {
    elapsed_ms: u64,
    store_hits: u64,
    store_misses: u64,
    store_puts: u64,
}

/// `anacin client`: submit one job to a running daemon, stream its
/// progress to stderr, and print the result payload to stdout —
/// byte-identical to running the equivalent command locally.
fn cmd_client(args: &Args) -> Result<(), String> {
    use anacin_serve::client::Outcome;
    use anacin_serve::{Client, Frame, JobSpec};
    let config = campaign_of(args)?;
    let job = match args.get_or("job", "campaign").as_str() {
        "campaign" if args.flag("explore") => JobSpec::Explore {
            config,
            budget: args.get_parsed("schedule-budget", 4096usize)?,
            brute_force: args.flag("brute-force"),
        },
        "campaign" => JobSpec::Campaign { config },
        "sweep" => JobSpec::Sweep {
            kind: args.get_or("kind", "nd"),
            config,
        },
        "explore" => JobSpec::Explore {
            config,
            budget: args.get_parsed("schedule-budget", 4096usize)?,
            brute_force: args.flag("brute-force"),
        },
        "append" => JobSpec::Append { config },
        other => return Err(format!("unknown job kind '{other}'")),
    };
    let retries: u32 = args.get_parsed("retries", 3u32)?;
    let peer = args.get_or("peer", "anacin-client");
    let mut client = match args.get("connect") {
        Some(addr) => Client::connect_tcp(addr, &peer).map_err(|e| e.to_string())?,
        None => {
            let socket = args.get_or("socket", "anacin.sock");
            Client::connect_unix(&socket, &peer).map_err(|e| e.to_string())?
        }
    };
    let outcome = client
        .run_with_retry(1, job, retries, |frame| {
            if let Frame::Progress {
                done_runs,
                total_runs,
                events,
                event_rate,
                hottest,
                eta_ms,
                ..
            } = frame
            {
                let eta = match eta_ms {
                    Some(ms) => format!(", eta {ms} ms"),
                    None => String::new(),
                };
                eprintln!(
                    "progress: {done_runs}/{total_runs} run(s), {events} event(s) \
                     ({event_rate:.0}/s), hottest {hottest}{eta}"
                );
            }
        })
        .map_err(|e| e.to_string())?;
    match outcome {
        Outcome::Done(r) => {
            eprintln!(
                "job done in {} ms: store {} hit(s), {} miss(es), {} publish(es)",
                r.elapsed_ms, r.store_hits, r.store_misses, r.store_puts
            );
            if let Some(path) = args.get("stats") {
                let stats = ClientStats {
                    elapsed_ms: r.elapsed_ms,
                    store_hits: r.store_hits,
                    store_misses: r.store_misses,
                    store_puts: r.store_puts,
                };
                let json = serde_json::to_string_pretty(&stats).map_err(|e| e.to_string())?;
                std::fs::write(path, json).map_err(|e| e.to_string())?;
            }
            print!("{}", r.payload);
            Ok(())
        }
        Outcome::Rejected { retry_after_ms } => Err(format!(
            "server refused the job {} time(s) (queue full or draining); retry in {retry_after_ms} ms",
            retries + 1
        )),
        Outcome::Failed { message } => Err(format!("job failed: {message}")),
    }
}

fn cmd_store(args: &Args) -> Result<(), String> {
    let dir = args
        .get("store")
        .ok_or("store requires --store DIR")?
        .to_string();
    let store = ArtifactStore::open(&dir).map_err(|e| e.to_string())?;
    match args.positional.first().map(String::as_str) {
        Some("stats") => {
            let s = store.stats().map_err(|e| e.to_string())?;
            println!("store {dir}: {} artifact(s), {} byte(s)", s.files, s.bytes);
            if !s.by_kind.is_empty() {
                println!("{:>10} {:>8} {:>14}", "kind", "files", "bytes");
                for (kind, files, bytes) in &s.by_kind {
                    println!("{:>10} {:>8} {:>14}", kind.ext(), files, bytes);
                }
            }
            Ok(())
        }
        Some("verify") => {
            let r = store.verify().map_err(|e| e.to_string())?;
            println!(
                "store {dir}: {} ok, {} stale-schema, {} corrupt",
                r.ok,
                r.stale_schema,
                r.corrupt.len()
            );
            for (path, reason) in &r.corrupt {
                println!("  CORRUPT {}: {reason}", path.display());
            }
            if r.corrupt.is_empty() {
                Ok(())
            } else {
                Err(format!("{} corrupt artifact(s) found", r.corrupt.len()))
            }
        }
        Some("gc") => {
            let budget: u64 = args.get_parsed("budget", 256u64 << 20)?;
            let r = store.gc(budget).map_err(|e| e.to_string())?;
            println!(
                "store {dir}: evicted {} file(s) / {} byte(s); kept {} file(s) / {} byte(s)\
                 {}",
                r.evicted_files,
                r.evicted_bytes,
                r.kept_files,
                r.kept_bytes,
                if r.pinned_skipped > 0 {
                    format!(" ({} pinned artifact(s) skipped)", r.pinned_skipped)
                } else {
                    String::new()
                }
            );
            Ok(())
        }
        _ => Err("store requires an action: 'stats', 'verify' or 'gc'".to_string()),
    }
}

fn cmd_bench(args: &Args) -> Result<(), String> {
    match args.positional.first().map(String::as_str) {
        Some("baseline") => {
            if let Some(scale) = args.get("scale") {
                if scale != "large" {
                    return Err(format!(
                        "unknown bench scale '{scale}' (expected 'large'; omit --scale for the paper tier)"
                    ));
                }
                let cfg = anacin_bench::LargeScaleConfig {
                    procs: args.get_parsed("procs", 1024u32)?,
                    runs: args.get_parsed("runs", 3u32)?,
                    iterations: args.get_parsed("iterations", 1u32)?,
                    base_seed: args.get_parsed("seed", 1u64)?,
                };
                let report = anacin_bench::run_large_baseline(&cfg);
                print!("{}", report.render_table());
                let path = args.get_or("out", "BENCH_large.json");
                let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
                std::fs::write(&path, json).map_err(|e| e.to_string())?;
                println!("wrote {path}");
                return Ok(());
            }
            let cfg = anacin_bench::BaselineConfig {
                procs: args.get_parsed("procs", 32u32)?,
                runs: args.get_parsed("runs", 10u32)?,
                samples: args.get_parsed("samples", 3u32)?,
                base_seed: args.get_parsed("seed", 1u64)?,
                ..Default::default()
            };
            let mut report = anacin_bench::run_baseline(&cfg);
            // Service-path row: the same campaign submitted twice over a
            // scratch daemon's socket — cold, then warm — so bench trend
            // watches serve latency alongside the per-stage timings.
            let pattern = Pattern::Amg2013;
            match anacin_serve::bench::measure_serve_latency(pattern, cfg.procs, cfg.runs) {
                Ok(l) => {
                    report.serve = Some(anacin_bench::ServeRow {
                        pattern: pattern.to_string(),
                        serve_cold_ms: l.cold_ms,
                        serve_warm_ms: l.warm_ms,
                        serve_speedup: if l.warm_ms > 0.0 {
                            l.cold_ms / l.warm_ms
                        } else {
                            0.0
                        },
                    });
                }
                Err(e) => eprintln!("serve latency row skipped: {e}"),
            }
            print!("{}", report.render_table());
            let path = args.get_or("out", "BENCH_baseline.json");
            let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
            std::fs::write(&path, json).map_err(|e| e.to_string())?;
            println!("wrote {path}");
            Ok(())
        }
        Some("trend") => {
            let dir = args
                .positional
                .get(1)
                .map(String::as_str)
                .unwrap_or(".")
                .to_string();
            let cfg = anacin_bench::TrendConfig {
                threshold_pct: args.get_parsed("threshold", 30.0f64)?,
                window: args.get_parsed("window", 5usize)?,
            };
            let report = anacin_bench::analyze_dir(&dir, &cfg)?;
            if args.flag("json") {
                let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
                println!("{json}");
            } else {
                print!("{}", anacin_bench::render_trend_table(&report));
            }
            if report.regressions > 0 {
                // Non-zero exit so a CI step fails on a flagged series.
                return Err(format!(
                    "{} performance regression(s) flagged (threshold {}%, window {})",
                    report.regressions, cfg.threshold_pct, cfg.window
                ));
            }
            Ok(())
        }
        _ => Err("bench requires an action: 'baseline' or 'trend'".to_string()),
    }
}

fn cmd_root_cause(args: &Args) -> Result<(), String> {
    let cfg = campaign_of(args)?;
    let result = run_campaign(&cfg).map_err(|e| e.to_string())?;
    let rc = RootCauseConfig {
        slices: args.get_parsed("slices", 16usize)?,
        top_fraction: args.get_parsed("top", 0.25f64)?,
        ..Default::default()
    };
    let ranking = analyze(&result, &rc);
    print!("{}", ranking_table(&ranking, 10));
    println!(
        "high-ND windows: {:?} (of {} windows)",
        ranking.high_slices, rc.slices
    );
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), String> {
    let pattern = pattern_of(args)?;
    let app = MiniAppConfig::with_procs(args.get_parsed("procs", 6)?);
    let program = pattern.build(&app);
    let seed = args.get_parsed("seed", 1u64)?;
    let recorded =
        simulate(&program, &SimConfig::with_nd_percent(100.0, seed)).map_err(|e| e.to_string())?;
    let record = match args.get("record") {
        Some(path) => {
            let data = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
            let rec: MatchRecord = serde_json::from_str(&data).map_err(|e| e.to_string())?;
            println!(
                "loaded match record from {path} ({} decisions)",
                rec.total()
            );
            rec
        }
        None => MatchRecord::from_trace(&recorded),
    };
    println!(
        "recorded run (seed {seed}): {} receive decisions captured",
        record.total()
    );
    let k = WlKernel::default();
    let g_rec = EventGraph::from_trace(&recorded);
    let mut max_free = 0.0f64;
    let mut max_replay = 0.0f64;
    for other_seed in (seed + 1)..(seed + 6) {
        let free = simulate(&program, &SimConfig::with_nd_percent(100.0, other_seed))
            .map_err(|e| e.to_string())?;
        let replayed = simulate_replay(
            &program,
            &SimConfig::with_nd_percent(100.0, other_seed),
            &record,
        )
        .map_err(|e| e.to_string())?;
        let d_free = distance(&k, &g_rec, &EventGraph::from_trace(&free));
        let d_rep = distance(&k, &g_rec, &EventGraph::from_trace(&replayed));
        println!(
            "seed {other_seed}: free-run distance = {d_free:.4}, replayed distance = {d_rep:.4}"
        );
        max_free = max_free.max(d_free);
        max_replay = max_replay.max(d_rep);
    }
    println!(
        "replay pins matching: max replayed distance {max_replay:.4} (free runs reached \
         {max_free:.4})"
    );
    Ok(())
}

fn cmd_figure(args: &Args) -> Result<(), String> {
    let scale = if args.flag("paper-scale") {
        Scale::paper()
    } else {
        Scale::quick()
    };
    let id = args.positional.first().map(String::as_str).unwrap_or("all");
    let ids: Vec<&str> = if id == "all" {
        ALL_IDS.to_vec()
    } else {
        vec![id]
    };
    for id in ids {
        let fig = by_id(id, &scale).ok_or_else(|| format!("unknown figure id '{id}'"))?;
        println!("=== {} ===", fig.title);
        println!("{}", fig.text);
        for (claim, ok) in &fig.checks {
            println!("[{}] {claim}", if *ok { "PASS" } else { "FAIL" });
        }
        if let (Some(dir), Some(svg)) = (args.get("out-dir"), fig.svg.as_deref()) {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
            let path = format!("{dir}/{}.svg", fig.id);
            std::fs::write(&path, svg).map_err(|e| e.to_string())?;
            println!("wrote {path}");
        }
        println!();
    }
    Ok(())
}

fn cmd_course(args: &Args) -> Result<(), String> {
    if let Some(lesson) = args.get("lesson") {
        let cfg = if args.flag("paper-scale") {
            LessonConfig::paper_scale()
        } else {
            LessonConfig::default()
        };
        let report = match lesson {
            "1" => use_case_1(&cfg),
            "2" => use_case_2(&cfg),
            "3" => use_case_3(&cfg),
            "4" => use_case_4(&cfg),
            other => return Err(format!("unknown lesson '{other}' (expected 1, 2, 3 or 4)")),
        };
        println!("=== {} ===\n", report.title);
        println!("{}", report.narrative);
        for c in &report.checks {
            println!(
                "[{}] {} — {}",
                if c.passed { "PASS" } else { "FAIL" },
                c.name,
                c.detail
            );
        }
        return if report.passed() {
            Ok(())
        } else {
            Err("lesson checks failed".to_string())
        };
    }
    if args.flag("related-work") {
        println!("{}", anacin_course::related_work::comparison());
        return Ok(());
    }
    if args.flag("agenda") {
        println!("{}", anacin_course::tutorial::agenda());
        return Ok(());
    }
    // No lesson: print the course structure.
    let levels: Vec<Level> = match args.get("level") {
        Some("a") | Some("A") => vec![Level::Beginner],
        Some("b") | Some("B") => vec![Level::Intermediate],
        Some("c") | Some("C") => vec![Level::Advanced],
        None => Level::ALL.to_vec(),
        Some(other) => return Err(format!("unknown level '{other}'")),
    };
    println!("{}", table_i());
    println!("{}", table_ii());
    for level in levels {
        println!("Questions — {level}:");
        for q in questions_of(level) {
            println!("  ({}) {}", q.goal, q.prompt);
            if args.flag("answers") {
                println!("      → {}", q.answer);
            }
        }
    }
    Ok(())
}

fn cmd_embed(args: &Args) -> Result<(), String> {
    let cfg = campaign_of(args)?;
    let result = run_campaign(&cfg).map_err(|e| e.to_string())?;
    let embedding = mds(&result.matrix);
    println!(
        "embedded {} runs; axis variances: {:.4} / {:.4}",
        embedding.points.len(),
        embedding.eigenvalues.0,
        embedding.eigenvalues.1
    );
    for (i, (x, y)) in embedding.points.iter().enumerate() {
        println!(
            "run {i:>3} (seed {}): ({x:>9.4}, {y:>9.4})",
            cfg.base_seed + i as u64
        );
    }
    if let Some(path) = args.get("out") {
        let svg = anacin_viz::heatmap::scatter_svg(
            &embedding.points,
            &format!("{} runs in kernel space", cfg.pattern),
        );
        std::fs::write(path, svg).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_diff(args: &Args) -> Result<(), String> {
    let pattern = pattern_of(args)?;
    let mut app = MiniAppConfig::with_procs(args.get_parsed("procs", 4)?);
    app.iterations = args.get_parsed("iterations", 1u32)?;
    let program = pattern.build(&app);
    let nd = args.get_parsed("nd", 100.0)?;
    let seed_a = args.get_parsed("seed-a", 1u64)?;
    let seed_b = args.get_parsed("seed-b", 2u64)?;
    let ga = EventGraph::from_trace(
        &simulate(&program, &SimConfig::with_nd_percent(nd, seed_a)).map_err(|e| e.to_string())?,
    );
    let gb = EventGraph::from_trace(
        &simulate(&program, &SimConfig::with_nd_percent(nd, seed_b)).map_err(|e| e.to_string())?,
    );
    let d = anacin_event_graph::diff::diff(&ga, &gb).map_err(|e| e.to_string())?;
    print!("{d}");
    if d.identical() {
        println!("runs {seed_a} and {seed_b} matched every message identically");
    }
    Ok(())
}

fn cmd_heatmap(args: &Args) -> Result<(), String> {
    let cfg = campaign_of(args)?;
    let result = run_campaign(&cfg).map_err(|e| e.to_string())?;
    let n = result.matrix.len();
    print!(
        "{}",
        anacin_viz::heatmap::heatmap_ascii(n, |i, j| result.matrix.distance(i, j))
    );
    if let Some(path) = args.get("out") {
        let svg = anacin_viz::heatmap::heatmap_svg(
            n,
            |i, j| result.matrix.distance(i, j),
            &format!("pairwise kernel distances: {}", cfg.pattern),
        );
        std::fs::write(path, svg).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_reduction(args: &Args) -> Result<(), String> {
    use anacin_numerics::prelude::*;
    let exp = ReductionExperiment {
        procs: args.get_parsed("procs", 16)?,
        nd_percent: args.get_parsed("nd", 100.0)?,
        runs: args.get_parsed("runs", 20)?,
        seed: args.get_parsed("seed", 0xF10A7u64)?,
        magnitude_range: args.get_parsed("range", 6.0f64)?,
    };
    let report = anacin_numerics::run(&exp);
    println!(
        "{} contributors, {} runs, {} distinct arrival orders\n",
        exp.procs - 1,
        exp.runs,
        report.distinct_orders
    );
    println!("{:>14} {:>10} {:>14}", "algorithm", "distinct", "spread");
    for o in &report.outcomes {
        println!("{:>14} {:>10} {:>14.6e}", o.algorithm, o.distinct, o.spread);
    }
    println!(
        "\nan arrival-order (sequential) reduction is irreproducible; canonicalising the\n\
         order (sorted) restores bitwise reproducibility — the Enzo lesson (paper §I)."
    );
    Ok(())
}

fn cmd_exercise(args: &Args) -> Result<(), String> {
    use anacin_course::exercises as ex;
    match args.positional.first().map(String::as_str) {
        None => {
            println!("exercises:");
            for e in &ex::EXERCISES {
                println!("  [{}] {} — {}", e.level.code(), e.id, e.prompt);
            }
            println!("\nrun `anacin exercise <id> --solve` to grade the reference solution");
            Ok(())
        }
        Some(id) => {
            let e = ex::by_id(id).ok_or_else(|| format!("unknown exercise '{id}'"))?;
            println!("[{}] {}\n{}\n", e.level.code(), e.id, e.prompt);
            if !args.flag("solve") {
                return Ok(());
            }
            let (result, label) = match id {
                "write-a-race" => (
                    ex::check_write_a_race(&ex::solve_write_a_race()),
                    "reference",
                ),
                "make-it-deterministic" => (
                    ex::check_make_it_deterministic(&ex::solve_make_it_deterministic()),
                    "reference",
                ),
                "fix-the-deadlock" => {
                    println!(
                        "broken starting point: {}",
                        ex::check_fix_the_deadlock(&ex::broken_fix_the_deadlock())
                            .expect_err("the broken version must fail")
                    );
                    (
                        ex::check_fix_the_deadlock(&ex::solve_fix_the_deadlock()),
                        "reference",
                    )
                }
                "bound-the-race" => (
                    ex::check_bound_the_race(&ex::solve_bound_the_race()),
                    "reference",
                ),
                _ => unreachable!("catalogue covered"),
            };
            match result {
                Ok(()) => {
                    println!("[PASS] {label} solution satisfies the checker");
                    Ok(())
                }
                Err(e) => Err(format!("{label} solution failed: {e}")),
            }
        }
    }
}

fn cmd_inspect(args: &Args) -> Result<(), String> {
    // Static checks first: surface the diagnostics a student would want.
    let pattern = pattern_of(args)?;
    let mut app = MiniAppConfig::with_procs(args.get_parsed("procs", 4)?);
    app.iterations = args.get_parsed("iterations", 1u32)?;
    let program = pattern.build(&app);
    match program.check_balance() {
        Ok(()) => println!("static balance check: ok"),
        Err(e) => println!("static balance check: {e}"),
    }
    match program.check_requests() {
        Ok(()) => println!("static request check: ok"),
        Err(e) => println!("static request check: {e}"),
    }
    let g = single_graph(args)?;
    let stats = anacin_event_graph::stats::GraphStats::of(&g);
    print!("{}", stats.render());
    if let Some((src, dst, m)) = stats.hottest_channel() {
        println!("hottest channel: {src} -> {dst} ({m} message(s))");
    }
    println!(
        "race exposure: {:.0}% of receives use wildcards{}",
        stats.wildcard_fraction() * 100.0,
        if stats.wildcard_fraction() > 0.0 {
            " — these are the potential root sources of non-determinism"
        } else {
            " — this program's matching is fully specified"
        }
    );
    Ok(())
}

fn cmd_timeline(args: &Args) -> Result<(), String> {
    let pattern = pattern_of(args)?;
    let mut app = MiniAppConfig::with_procs(args.get_parsed("procs", 4)?);
    app.iterations = args.get_parsed("iterations", 1u32)?;
    let program = pattern.build(&app);
    let sim =
        SimConfig::with_nd_percent(args.get_parsed("nd", 0.0)?, args.get_parsed("seed", 1u64)?);
    let trace = simulate(&program, &sim).map_err(|e| e.to_string())?;
    let tl = anacin_mpisim::timeline::Timeline::of(&trace);
    print!("{}", anacin_viz::gantt::gantt_ascii(&tl, 64));
    print!("{}", anacin_viz::gantt::time_breakdown(&tl));
    if let Some(path) = args.get("out") {
        let svg = anacin_viz::gantt::gantt_svg(&tl, &format!("{} timeline", pattern));
        std::fs::write(path, svg).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    if args.positional.first().map(String::as_str) == Some("view") {
        let path = args
            .positional
            .get(1)
            .ok_or("trace view requires a FILE argument")?;
        let summary = if path.ends_with(".folded") {
            let data = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            folded_view_summary(&data).map_err(|e| format!("{path}: {e}"))?
        } else {
            trace_view_streaming(path).map_err(|e| format!("{path}: {e}"))?
        };
        print!("{summary}");
        return Ok(());
    }
    let pattern = pattern_of(args)?;
    let mut app = MiniAppConfig::with_procs(args.get_parsed("procs", 4)?);
    app.iterations = args.get_parsed("iterations", 1u32)?;
    let program = pattern.build(&app);
    let sim =
        SimConfig::with_nd_percent(args.get_parsed("nd", 0.0)?, args.get_parsed("seed", 1u64)?);
    let trace = simulate(&program, &sim).map_err(|e| e.to_string())?;
    let json = serde_json::to_string_pretty(&trace).map_err(|e| e.to_string())?;
    write_out(args, &json)
}

/// Scalar per-track aggregates of a Chrome trace's sim events. Holding
/// only these (never the timestamps themselves) is what lets `trace
/// view` stream arbitrarily large exports in constant memory per track.
#[derive(Clone, Copy)]
struct TrackAgg {
    count: usize,
    min_ts: f64,
    max_ts: f64,
    /// Previous event's timestamp, for the incremental gap (timestamps
    /// are monotone per track by construction).
    last_ts: f64,
    max_gap: f64,
}

/// Incremental `trace view` state: feed events one at a time (from a
/// whole document or a streamed line), render once at the end.
#[derive(Default)]
struct TraceViewAgg {
    // (run pid, rank tid) -> scalar aggregates.
    tracks: Vec<((i128, i128), TrackAgg)>,
    // wall span B/E matching, per (tid, name) stack.
    open: Vec<((i128, String), Vec<f64>)>,
    span_totals: Vec<(String, u64, f64)>,
}

impl TraceViewAgg {
    /// Ingest one trace event object.
    fn add(&mut self, ev: &serde::Value) {
        use serde::map_get;
        let Some(obj) = ev.as_object() else { return };
        let ph = map_get(obj, "ph").as_str().unwrap_or("");
        let cat = map_get(obj, "cat").as_str().unwrap_or("");
        if cat == "sim" && ph == "X" {
            let pid = map_get(obj, "pid").as_int().unwrap_or(0);
            let tid = map_get(obj, "tid").as_int().unwrap_or(0);
            let ts = map_get(obj, "ts").as_f64().unwrap_or(0.0);
            match self.tracks.iter_mut().find(|(k, _)| *k == (pid, tid)) {
                Some((_, t)) => {
                    t.count += 1;
                    t.min_ts = t.min_ts.min(ts);
                    t.max_ts = t.max_ts.max(ts);
                    t.max_gap = t.max_gap.max(ts - t.last_ts);
                    t.last_ts = ts;
                }
                None => self.tracks.push((
                    (pid, tid),
                    TrackAgg {
                        count: 1,
                        min_ts: ts,
                        max_ts: ts,
                        last_ts: ts,
                        max_gap: 0.0,
                    },
                )),
            }
        } else if cat == "wall" && (ph == "B" || ph == "E") {
            let tid = map_get(obj, "tid").as_int().unwrap_or(0);
            let name = map_get(obj, "name").as_str().unwrap_or("").to_string();
            let ts = map_get(obj, "ts").as_f64().unwrap_or(0.0);
            let key = (tid, name.clone());
            if ph == "B" {
                match self.open.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, v)) => v.push(ts),
                    None => self.open.push((key, vec![ts])),
                }
            } else if let Some(begin) = self
                .open
                .iter_mut()
                .find(|(k, _)| *k == key)
                .and_then(|(_, v)| v.pop())
            {
                let dur = (ts - begin).max(0.0);
                match self.span_totals.iter_mut().find(|(n, _, _)| *n == name) {
                    Some((_, c, t)) => {
                        *c += 1;
                        *t += dur;
                    }
                    None => self.span_totals.push((name, 1, dur)),
                }
            }
        }
    }

    /// Render the ASCII summary: per-rank event counts with proportional
    /// bars, the busiest rank, the longest inter-event gap on any rank,
    /// and the top-5 wall-clock spans by total time.
    fn render(mut self) -> Result<String, String> {
        if self.tracks.is_empty() && self.span_totals.is_empty() {
            return Err("no sim events or wall spans found (is this an anacin trace?)".to_string());
        }
        self.tracks.sort_by_key(|a| a.0);
        let mut out = String::new();
        let runs: Vec<i128> = {
            let mut v: Vec<i128> = self.tracks.iter().map(|((pid, _), _)| *pid).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let total_events: usize = self.tracks.iter().map(|(_, t)| t.count).sum();
        out.push_str(&format!(
            "sim events: {} across {} run(s), {} rank track(s)\n",
            total_events,
            runs.len(),
            self.tracks.len()
        ));
        let max_count = self.tracks.iter().map(|(_, t)| t.count).max().unwrap_or(1);
        for ((pid, tid), t) in &self.tracks {
            let bar_len = (t.count * 40 / max_count.max(1)).max(1);
            out.push_str(&format!(
                "  run {:>3} rank {:>3}: {:>6} events  {:<40}  [{:.1} µs sim-time]\n",
                pid - 1000,
                tid,
                t.count,
                "#".repeat(bar_len),
                t.max_ts - t.min_ts
            ));
        }
        if let Some(((pid, tid), t)) = self.tracks.iter().max_by_key(|(_, t)| t.count) {
            out.push_str(&format!(
                "busiest rank: run {} rank {} ({} events)\n",
                pid - 1000,
                tid,
                t.count
            ));
        }
        let longest = self
            .tracks
            .iter()
            .filter(|(_, t)| t.count > 1)
            .max_by(|a, b| a.1.max_gap.total_cmp(&b.1.max_gap));
        if let Some(((pid, tid), t)) = longest {
            out.push_str(&format!(
                "longest gap: {:.3} µs on run {} rank {}\n",
                t.max_gap,
                pid - 1000,
                tid
            ));
        }
        if !self.span_totals.is_empty() {
            self.span_totals
                .sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
            out.push_str("top spans by total wall time:\n");
            for (name, count, total_us) in self.span_totals.iter().take(5) {
                out.push_str(&format!(
                    "  {:<34} {:>6} x {:>12.3} ms\n",
                    name,
                    count,
                    total_us / 1e3
                ));
            }
        }
        Ok(out)
    }
}

/// Summarise a Chrome trace file by streaming it line by line — anacin
/// exports (and most Chrome traces) hold one event per line, so a
/// multi-gigabyte streamed trace summarises without ever being resident.
/// Falls back to whole-document parsing when no per-line events parse
/// (e.g. pretty-printed JSON from another tool).
fn trace_view_streaming(path: &str) -> Result<String, String> {
    use std::io::BufRead as _;
    let file = std::fs::File::open(path).map_err(|e| e.to_string())?;
    let reader = std::io::BufReader::new(file);
    let mut agg = TraceViewAgg::default();
    let mut parsed = 0u64;
    for line in reader.lines() {
        let line = line.map_err(|e| e.to_string())?;
        let body = line.trim().trim_end_matches(',');
        // Skip the document scaffolding; event lines are objects with a
        // "ph" phase field.
        if !body.starts_with('{') || !body.ends_with('}') || !body.contains("\"ph\"") {
            continue;
        }
        let Ok(ev) = serde_json::from_str_value(body) else {
            continue;
        };
        agg.add(&ev);
        parsed += 1;
    }
    if parsed == 0 {
        return trace_view_summary(&std::fs::read_to_string(path).map_err(|e| e.to_string())?);
    }
    agg.render()
}

/// Whole-document fallback for traces that aren't one-event-per-line.
fn trace_view_summary(data: &str) -> Result<String, String> {
    use serde::map_get;
    let doc = serde_json::from_str_value(data).map_err(|e| e.to_string())?;
    let root = doc.as_object().ok_or("trace root must be an object")?;
    let events = map_get(root, "traceEvents")
        .as_array()
        .ok_or("missing traceEvents array")?;
    let mut agg = TraceViewAgg::default();
    for ev in events {
        agg.add(ev);
    }
    agg.render()
}

/// Render the ASCII summary of a folded-stacks file (`a;b;c <self-µs>`
/// per line, the inferno / `flamegraph.pl` input format): the top stacks
/// by self-time with proportional bars, plus the file's totals.
fn folded_view_summary(data: &str) -> Result<String, String> {
    let mut stacks: Vec<(&str, u64)> = Vec::new();
    for (lineno, line) in data.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let (stack, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: not 'stack <value>'", lineno + 1))?;
        let value: u64 = value
            .parse()
            .map_err(|_| format!("line {}: bad self-time '{value}'", lineno + 1))?;
        stacks.push((stack, value));
    }
    if stacks.is_empty() {
        return Err("no stacks found (is this a folded flamegraph file?)".to_string());
    }
    let total: u64 = stacks.iter().map(|&(_, v)| v).sum();
    stacks.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    let mut out = format!(
        "{} stack(s), {:.3} ms total self-time\ntop stacks by self-time:\n",
        stacks.len(),
        total as f64 / 1e3
    );
    let max = stacks.first().map(|&(_, v)| v).unwrap_or(1).max(1);
    for (stack, value) in stacks.iter().take(10) {
        let bar_len = ((*value as usize * 32) / max as usize).max(1);
        out.push_str(&format!(
            "  {:<44} {:>12.3} ms {:>5.1}%  {}\n",
            stack,
            *value as f64 / 1e3,
            *value as f64 * 100.0 / total as f64,
            "#".repeat(bar_len)
        ));
    }
    Ok(out)
}

fn cmd_record(args: &Args) -> Result<(), String> {
    let pattern = pattern_of(args)?;
    let app = MiniAppConfig::with_procs(args.get_parsed("procs", 6)?);
    let program = pattern.build(&app);
    let seed = args.get_parsed("seed", 1u64)?;
    let nd = args.get_parsed("nd", 100.0)?;
    let trace =
        simulate(&program, &SimConfig::with_nd_percent(nd, seed)).map_err(|e| e.to_string())?;
    let record = MatchRecord::from_trace(&trace);
    let path = args
        .get("out")
        .ok_or("record requires --out FILE")?
        .to_string();
    let json = serde_json::to_string(&record).map_err(|e| e.to_string())?;
    std::fs::write(&path, json).map_err(|e| e.to_string())?;
    println!(
        "recorded {} matching decisions from seed {seed} into {path}",
        record.total()
    );
    Ok(())
}

fn cmd_ablation(args: &Args) -> Result<(), String> {
    let cfg = campaign_of(args)?;
    let result = run_campaign(&cfg).map_err(|e| e.to_string())?;
    let report = anacin_core::ablation::ablate(&result, &anacin_core::ablation::default_kernels());
    print!("{}", report.table());
    let top = report.by_signal()[0].kernel.clone();
    println!("\nmost discriminating kernel on this sample: {top}");
    Ok(())
}

fn cmd_report(args: &Args) -> Result<(), String> {
    use anacin_viz::html::HtmlReport;
    let cfg = campaign_of(args)?;
    let result = run_campaign(&cfg).map_err(|e| e.to_string())?;
    let m = NdMeasurement::from_campaign(format!("{}", cfg.pattern), &result);
    let mut report = HtmlReport::new(
        format!("Non-determinism report: {}", cfg.pattern),
        format!(
            "{} processes, {} iterations, nd = {}%, {} runs (seeds {}..{}), kernel = {}",
            cfg.app.procs,
            cfg.app.iterations,
            cfg.nd_percent,
            cfg.runs,
            cfg.base_seed,
            cfg.base_seed + cfg.runs as u64 - 1,
            result.matrix.kernel_name(),
        ),
    );
    report.text_section(
        "Measurement summary",
        "Pairwise kernel distances between runs; the paper's scalar proxy for the amount \
         of communication non-determinism.",
        format!(
            "pairs: {}\nmean: {:.4}\nmedian: {:.4}\nstd dev: {:.4}\nmin: {:.4}\nmax: {:.4}",
            m.distances.len(),
            m.summary.mean,
            m.summary.median,
            m.summary.std_dev,
            m.summary.min,
            m.summary.max
        ),
    );
    if let Some(v) = m.violin() {
        report.svg_section(
            "Kernel-distance distribution",
            "The violin the paper's Figures 5-7 are built from.",
            svg::violin_svg(&[v], "kernel distances", "kernel distance"),
        );
    }
    let n = result.matrix.len();
    report.svg_section(
        "Pairwise distance heatmap",
        "Which run pairs diverge; a uniform block means isotropic non-determinism, \
         stripes mean outlier runs.",
        anacin_viz::heatmap::heatmap_svg(n, |i, j| result.matrix.distance(i, j), "run pairs"),
    );
    let embedding = mds(&result.matrix);
    report.svg_section(
        "Runs in kernel space (classical MDS)",
        "Each dot is one run; tight clusters are reproducible outcome classes.",
        anacin_viz::heatmap::scatter_svg(&embedding.points, "run embedding"),
    );
    if result.graphs.len() >= 2 {
        let ranking = analyze(&result, &RootCauseConfig::default());
        let items: Vec<(String, f64)> = ranking
            .entries
            .iter()
            .take(8)
            .map(|e| (e.stack.clone(), e.frequency))
            .collect();
        report.svg_section(
            "Root-source call paths",
            "Call paths of receives in the most divergent logical-time windows, weighted \
             by their label disagreement (the paper's Figure 8).",
            svg::bar_chart_svg(&items, "root sources", "normalized relative frequency"),
        );
        report.text_section(
            "Ranked call paths",
            "Most likely root sources of non-determinism first.",
            ranking_table(&ranking, 10),
        );
    }
    report.svg_section(
        "Event graph of run 0",
        "Green = process start/end, blue = send, red = receive; dashed edges are \
         messages.",
        svg::event_graph_svg(&result.graphs[0], "run 0"),
    );
    let path = args.get("out").unwrap_or("report.html").to_string();
    std::fs::write(&path, report.render()).map_err(|e| e.to_string())?;
    println!("wrote {path} ({} sections)", report.len());
    Ok(())
}

fn parse_event(spec: &str) -> Result<(u32, u32), String> {
    let (r, i) = spec
        .split_once('.')
        .ok_or_else(|| format!("event spec '{spec}' must be RANK.INDEX, e.g. 0.3"))?;
    Ok((
        r.parse().map_err(|_| format!("bad rank in '{spec}'"))?,
        i.parse().map_err(|_| format!("bad index in '{spec}'"))?,
    ))
}

fn cmd_explain(args: &Args) -> Result<(), String> {
    let g = single_graph(args)?;
    let (fr, fi) = parse_event(&args.get_or("from", "0.0"))?;
    let (tr, ti) = parse_event(&args.get_or("to", "0.1"))?;
    if fr >= g.world_size() || tr >= g.world_size() {
        return Err("rank out of range".to_string());
    }
    let a = g.id_at(Rank(fr), fi);
    let b = g.id_at(Rank(tr), ti);
    match anacin_event_graph::explain::explain(&g, a, b) {
        Some(chain) => {
            print!("{}", chain.render(&g));
            println!(
                "({} hops, {} of them messages)",
                chain.hops.len(),
                chain.message_hops()
            );
        }
        None => println!(
            "rank {fr} event #{fi} does NOT happen-before rank {tr} event #{ti}: the two \
             events are concurrent (or ordered the other way)"
        ),
    }
    Ok(())
}

fn cmd_testkit(args: &Args) -> Result<(), String> {
    use anacin_testkit::prelude::*;
    let seed = args.get_parsed("seed", 0u64)?;
    match args.positional.first().map(String::as_str) {
        Some("gen") => {
            let mut cfg = GenConfig::from_seed(seed);
            if let Some(procs) = args.get("procs") {
                cfg.world_size = procs
                    .parse()
                    .map_err(|_| format!("invalid value '{procs}' for --procs"))?;
            }
            if let Some(rounds) = args.get("rounds") {
                cfg.rounds = rounds
                    .parse()
                    .map_err(|_| format!("invalid value '{rounds}' for --rounds"))?;
            }
            let gp = generate(&cfg);
            let mut listing = format!(
                "# generated program (seed {seed}): {} ranks, {} rounds {:?}, \
                 {} sends / {} receives, chaotic ranks {:?}\n",
                gp.program.world_size(),
                gp.round_kinds.len(),
                gp.round_kinds,
                gp.program.total_sends(),
                gp.program.total_receives(),
                gp.chaotic_ranks,
            );
            for r in 0..gp.program.world_size() {
                listing.push_str(&format!("rank {r}:\n"));
                for op in gp.program.ops(Rank(r)) {
                    listing.push_str(&format!("  {op:?}\n"));
                }
            }
            write_out(args, &listing)
        }
        Some("check") => {
            let count = args.get_parsed("count", 1u64)?;
            for s in seed..seed + count {
                let summary = check_seed(s).map_err(|e| format!("seed {s}: {e}"))?;
                println!(
                    "seed {s}: ok — {} events, {} messages ({} wildcard recvs), \
                     {} replayed receives aligned, {} kernel pairs checked",
                    summary.validation.events,
                    summary.validation.messages,
                    summary.validation.wildcard_recvs,
                    summary.replayed_receives,
                    summary.kernel_pairs,
                );
            }
            println!("all oracles hold for {count} generated program(s)");
            Ok(())
        }
        _ => Err("testkit requires an action: 'gen' or 'check'".to_string()),
    }
}
