//! `anacin` binary entry point; all logic lives in the library so it can
//! be integration-tested.

use anacin_cli::args::Args;

fn main() {
    let parsed = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let code = match anacin_cli::commands::dispatch(&parsed) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    };
    std::process::exit(code);
}
