//! # anacin-cli
//!
//! The `anacin` command-line interface: argument parsing ([`args`]) and
//! subcommand implementations ([`commands`]). Split into a library so the
//! command surface is integration-testable.

#![warn(missing_docs)]

pub mod args;
pub mod commands;
