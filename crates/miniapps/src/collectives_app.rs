//! A collective-heavy mini-application (extension).
//!
//! The paper lists MPI collectives as ANACIN-X future work; this pattern
//! exercises the point-to-point collectives of
//! `anacin_mpisim::collectives`: per iteration, a broadcast of work from
//! rank 0, a message-race-style result submission (the only wildcard —
//! and thus the only non-determinism source), an allreduce of residuals,
//! and a closing barrier. Useful in the course to show that *collective*
//! traffic, being fully specified, contributes no communication
//! non-determinism: at 0% ND the whole app is deterministic, and at 100%
//! ND only the submission race reorders.

use crate::config::MiniAppConfig;
use anacin_mpisim::collectives;
use anacin_mpisim::program::{Program, ProgramBuilder};
use anacin_mpisim::types::{Rank, Tag, TagSpec};

/// Build the collectives mini-app.
///
/// # Panics
/// Panics when `config.procs < 2` or `config.iterations < 1`.
pub fn build(config: &MiniAppConfig) -> Program {
    config.validate(2);
    let n = config.procs;
    let mut b = ProgramBuilder::new(n);
    for iter in 0..config.iterations {
        let inst = iter as i32 * 8;
        // Distribute work.
        collectives::broadcast(&mut b, n, Rank(0), config.message_bytes, inst);
        // Racy result submission (wildcards at the root).
        let tag = Tag(iter as i32);
        for r in 1..n {
            let mut rb = b.rank(Rank(r));
            rb.set_context(["main", "iterate", "submit_partial"]);
            rb.send(Rank(0), tag, config.message_bytes);
        }
        {
            let mut root = b.rank(Rank(0));
            root.set_context(["main", "iterate", "gather_partials"]);
            for _ in 1..n {
                root.recv_any(TagSpec::Tag(tag));
            }
        }
        // Reduce the residual everywhere, then synchronise. Reset every
        // rank's call-path context first so collective frames nest under
        // `main > iterate`, not under the submission helpers.
        for r in 0..n {
            b.rank(Rank(r)).set_context(["main", "iterate"]);
        }
        collectives::allreduce(&mut b, n, 8, inst + 1);
        collectives::barrier(&mut b, n, inst + 4);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anacin_mpisim::prelude::*;

    #[test]
    fn completes_for_various_sizes() {
        for procs in [2, 3, 5, 8] {
            let p = build(&MiniAppConfig::with_procs(procs).iterations(2));
            let t = simulate(&p, &SimConfig::with_nd_percent(100.0, 7))
                .unwrap_or_else(|e| panic!("procs={procs}: {e}"));
            assert_eq!(t.meta.unmatched_messages, 0);
            t.validate().unwrap();
        }
    }

    #[test]
    fn only_the_submission_race_is_wildcard() {
        let n = 6u32;
        let p = build(&MiniAppConfig::with_procs(n));
        let t = simulate(&p, &SimConfig::deterministic()).unwrap();
        assert_eq!(t.wildcard_recv_count() as u32, n - 1);
    }

    #[test]
    fn deterministic_at_zero_nd() {
        let p = build(&MiniAppConfig::with_procs(5));
        let a = simulate(
            &p,
            &SimConfig {
                network: NetworkConfig::deterministic(),
                seed: 1,
            },
        )
        .unwrap();
        let b2 = simulate(
            &p,
            &SimConfig {
                network: NetworkConfig::deterministic(),
                seed: 2,
            },
        )
        .unwrap();
        for r in 0..5 {
            assert_eq!(a.rank_events(Rank(r)), b2.rank_events(Rank(r)));
        }
    }

    #[test]
    fn race_still_races_at_full_nd() {
        let p = build(&MiniAppConfig::with_procs(8));
        let mut orders = std::collections::HashSet::new();
        for seed in 0..20 {
            let t = simulate(&p, &SimConfig::with_nd_percent(100.0, seed)).unwrap();
            orders.insert(t.match_order(Rank(0)));
        }
        assert!(orders.len() > 1);
    }
}
