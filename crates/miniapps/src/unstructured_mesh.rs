//! The unstructured-mesh communication pattern.
//!
//! Paper §II-B: "Unstructured Mesh expands further by randomizing which
//! processes are allowed to communicate with each other." Modelled on the
//! Chatterbug `unstr-mesh` proxy: a random directed neighbour topology is
//! drawn once from `topology_seed` (it is part of the *program*, like a
//! mesh decomposition), and each iteration performs a halo exchange over
//! it — isends to out-neighbours, wildcard irecvs for in-neighbours,
//! waitall.

use crate::config::MiniAppConfig;
use anacin_mpisim::program::{Program, ProgramBuilder};
use anacin_mpisim::types::{Rank, Tag, TagSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The random neighbour topology of an unstructured-mesh instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeshTopology {
    /// `out[r]` = ranks r sends to each iteration.
    pub out: Vec<Vec<Rank>>,
    /// `in_degree[r]` = number of messages r receives each iteration.
    pub in_degree: Vec<u32>,
}

impl MeshTopology {
    /// Draw a topology: each rank picks `degree` distinct out-neighbours
    /// uniformly (excluding itself), seeded so a configuration denotes one
    /// fixed mesh.
    pub fn generate(procs: u32, degree: u32, seed: u64) -> Self {
        assert!(procs >= 2, "mesh needs at least 2 processes");
        let degree = degree.min(procs - 1).max(1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = vec![Vec::new(); procs as usize];
        let mut in_degree = vec![0u32; procs as usize];
        for r in 0..procs {
            let mut peers: Vec<u32> = (0..procs).filter(|&p| p != r).collect();
            // Partial Fisher-Yates: pick `degree` distinct peers.
            for i in 0..degree as usize {
                let j = rng.gen_range(i..peers.len());
                peers.swap(i, j);
            }
            for &p in peers.iter().take(degree as usize) {
                out[r as usize].push(Rank(p));
                in_degree[p as usize] += 1;
            }
        }
        MeshTopology { out, in_degree }
    }

    /// Total directed edges in the mesh.
    pub fn edge_count(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }
}

/// Build the unstructured-mesh program.
///
/// # Panics
/// Panics when `config.procs < 2` or `config.iterations < 1`.
pub fn build(config: &MiniAppConfig) -> Program {
    config.validate(2);
    let topo = MeshTopology::generate(config.procs, config.mesh_degree, config.topology_seed);
    build_with_topology(config, &topo)
}

/// Build against an explicit topology (exposed for tests and ablations).
pub fn build_with_topology(config: &MiniAppConfig, topo: &MeshTopology) -> Program {
    config.validate(2);
    let n = config.procs;
    let mut b = ProgramBuilder::new(n);
    for iter in 0..config.iterations {
        let tag = Tag(iter as i32);
        for r in 0..n {
            let mut rb = b.rank(Rank(r));
            rb.set_context(["main", "mesh_solver_step", "exchange_halo"]);
            let mut reqs = Vec::new();
            rb.push_frame("post_receives");
            for _ in 0..topo.in_degree[r as usize] {
                reqs.push(rb.irecv_any(TagSpec::Tag(tag)));
            }
            rb.pop_frame();
            rb.push_frame("pack_and_send");
            for &dst in &topo.out[r as usize] {
                reqs.push(rb.isend(dst, tag, config.message_bytes));
            }
            rb.pop_frame();
            rb.waitall(reqs);
            // Local stencil work between iterations.
            rb.set_context(["main", "mesh_solver_step", "local_compute"]);
            rb.compute(200);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anacin_mpisim::prelude::*;

    #[test]
    fn topology_is_seed_deterministic() {
        let a = MeshTopology::generate(16, 3, 42);
        let b = MeshTopology::generate(16, 3, 42);
        let c = MeshTopology::generate(16, 3, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn topology_degrees() {
        let t = MeshTopology::generate(10, 3, 1);
        for (r, out) in t.out.iter().enumerate() {
            assert_eq!(out.len(), 3);
            // Distinct, no self.
            let set: std::collections::HashSet<_> = out.iter().collect();
            assert_eq!(set.len(), 3);
            assert!(!out.contains(&Rank(r as u32)));
        }
        assert_eq!(t.edge_count(), 30);
        assert_eq!(t.in_degree.iter().sum::<u32>(), 30);
    }

    #[test]
    fn degree_clamped_to_procs_minus_one() {
        let t = MeshTopology::generate(3, 10, 0);
        for out in &t.out {
            assert_eq!(out.len(), 2);
        }
    }

    #[test]
    fn program_is_balanced_and_completes() {
        for procs in [2, 4, 9, 16] {
            let cfg = MiniAppConfig::with_procs(procs).iterations(2);
            let p = build(&cfg);
            assert!(p.check_balance().is_ok(), "procs={procs}");
            let t = simulate(&p, &SimConfig::with_nd_percent(100.0, 5)).unwrap();
            assert_eq!(t.meta.unmatched_messages, 0);
            t.validate().unwrap();
        }
    }

    #[test]
    fn same_config_same_program() {
        let cfg = MiniAppConfig::with_procs(8);
        let t1 = simulate(&build(&cfg), &SimConfig::deterministic()).unwrap();
        let t2 = simulate(&build(&cfg), &SimConfig::deterministic()).unwrap();
        for r in 0..8 {
            assert_eq!(t1.rank_events(Rank(r)), t2.rank_events(Rank(r)));
        }
    }

    #[test]
    fn message_count_scales_with_iterations() {
        let one = build(&MiniAppConfig::with_procs(8).iterations(1));
        let two = build(&MiniAppConfig::with_procs(8).iterations(2));
        assert_eq!(two.total_sends(), 2 * one.total_sends());
    }

    #[test]
    fn nondeterministic_across_seeds() {
        let p = build(&MiniAppConfig::with_procs(12));
        let mut fingerprints = std::collections::HashSet::new();
        for seed in 0..10 {
            let t = simulate(&p, &SimConfig::with_nd_percent(100.0, seed)).unwrap();
            let fp: Vec<_> = (0..12).map(|r| t.match_order(Rank(r))).collect();
            fingerprints.insert(fp);
        }
        assert!(fingerprints.len() > 1);
    }

    #[test]
    fn halo_frames_present() {
        let p = build(&MiniAppConfig::with_procs(4));
        let t = simulate(&p, &SimConfig::deterministic()).unwrap();
        let any_halo = t.iter().any(|(_, e)| {
            t.stacks()
                .get(e.stack)
                .map(|s| s.to_string().contains("exchange_halo"))
                .unwrap_or(false)
        });
        assert!(any_halo);
    }
}
