//! # anacin-miniapps
//!
//! The mini-application communication patterns packaged with the toolkit,
//! re-implemented from the paper's descriptions (§II-B):
//!
//! * [`message_race`] — "multiple messages are being sent to the same
//!   process, and the order they will arrive in is unknown";
//! * [`amg2013`] — "each process … send\[s\] a message to all other
//!   processes … twice" per iteration, with hypre-style call paths;
//! * [`unstructured_mesh`] — "randomiz\[es\] which processes are allowed to
//!   communicate with each other" (Chatterbug-style halo exchange);
//! * [`collectives_app`] — extension exercising the point-to-point
//!   collectives (the paper's stated future work);
//! * [`stencil2d`] — deterministic named-matching halo exchange, the
//!   negative control (zero non-determinism at any ND%).
//!
//! Each pattern is a pure function `MiniAppConfig → Program`; all
//! run-to-run variation comes from the simulator seed, never the builder.
//!
//! ```
//! use anacin_miniapps::prelude::*;
//! use anacin_mpisim::prelude::*;
//!
//! let program = Pattern::Amg2013.build(&MiniAppConfig::with_procs(4));
//! let trace = simulate(&program, &SimConfig::with_nd_percent(100.0, 1)).unwrap();
//! assert_eq!(trace.meta.unmatched_messages, 0);
//! ```

#![warn(missing_docs)]

pub mod amg2013;
pub mod collectives_app;
pub mod config;
pub mod message_race;
pub mod pattern;
pub mod stencil2d;
pub mod unstructured_mesh;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::config::MiniAppConfig;
    pub use crate::pattern::Pattern;
    pub use crate::unstructured_mesh::MeshTopology;
}

pub use config::MiniAppConfig;
pub use pattern::Pattern;
