//! The message-race mini-application.
//!
//! Paper §II-B: "a message race is when multiple messages are being sent
//! to the same process, and the order they will arrive in is unknown. It
//! is the simplest communication pattern of the three." Every non-root
//! rank sends one message per iteration to rank 0, which posts wildcard
//! receives — the minimal widget exhibiting communication
//! non-determinism.
//!
//! Call paths mimic a small client/aggregator code so the root-cause
//! analysis has realistic frames to rank.

use crate::config::MiniAppConfig;
use anacin_mpisim::program::{Program, ProgramBuilder};
use anacin_mpisim::types::{Rank, Tag, TagSpec};

/// Build the message-race program: ranks `1..procs` send to rank 0.
///
/// # Panics
/// Panics when `config.procs < 2` or `config.iterations < 1`.
pub fn build(config: &MiniAppConfig) -> Program {
    config.validate(2);
    let n = config.procs;
    let mut b = ProgramBuilder::new(n);
    for iter in 0..config.iterations {
        let tag = Tag(iter as i32);
        for r in 1..n {
            let mut rb = b.rank(Rank(r));
            rb.set_context(["main", "worker_loop", "submit_result"]);
            rb.send(Rank(0), tag, config.message_bytes);
        }
        {
            let mut root = b.rank(Rank(0));
            root.set_context(["main", "aggregate_results", "collect_any"]);
            for _ in 1..n {
                root.recv_any(TagSpec::Tag(tag));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anacin_mpisim::prelude::*;

    #[test]
    fn structure_counts() {
        let p = build(&MiniAppConfig::with_procs(4));
        assert_eq!(p.world_size(), 4);
        assert_eq!(p.total_sends(), 3);
        assert_eq!(p.total_receives(), 3);
        assert!(p.check_balance().is_ok());
    }

    #[test]
    fn iterations_scale_messages() {
        let p = build(&MiniAppConfig::with_procs(4).iterations(3));
        assert_eq!(p.total_sends(), 9);
        assert!(p.check_balance().is_ok());
    }

    #[test]
    fn runs_to_completion_at_any_nd() {
        let p = build(&MiniAppConfig::with_procs(8).iterations(2));
        for nd in [0.0, 50.0, 100.0] {
            let t = simulate(&p, &SimConfig::with_nd_percent(nd, 1)).unwrap();
            assert_eq!(t.meta.unmatched_messages, 0);
            t.validate().unwrap();
        }
    }

    #[test]
    fn all_receives_are_wildcards() {
        let p = build(&MiniAppConfig::with_procs(6));
        let t = simulate(&p, &SimConfig::deterministic()).unwrap();
        assert_eq!(t.wildcard_recv_count(), 5);
    }

    #[test]
    fn exhibits_nondeterminism_at_full_nd() {
        let p = build(&MiniAppConfig::with_procs(8));
        let mut orders = std::collections::HashSet::new();
        for seed in 0..20 {
            let t = simulate(&p, &SimConfig::with_nd_percent(100.0, seed)).unwrap();
            orders.insert(t.match_order(Rank(0)));
        }
        assert!(orders.len() > 1);
    }

    #[test]
    fn call_paths_attached() {
        let p = build(&MiniAppConfig::with_procs(3));
        let t = simulate(&p, &SimConfig::deterministic()).unwrap();
        let mut leaves = std::collections::HashSet::new();
        for (_, e) in t.iter() {
            if let Some(s) = t.stacks().get(e.stack) {
                if let Some(l) = s.leaf() {
                    leaves.insert(l.to_string());
                }
            }
        }
        assert!(leaves.contains("MPI_Send"));
        assert!(leaves.contains("MPI_Recv"));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_single_process() {
        build(&MiniAppConfig::with_procs(1));
    }
}
