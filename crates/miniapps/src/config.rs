//! Mini-application configuration.

use serde::{Deserialize, Serialize};

/// Parameters shared by every packaged communication pattern. These mirror
//  the knobs ANACIN-X exposes to students (paper §II-B): number of MPI
/// processes, percentage of non-determinism, number of compute nodes,
/// number of communication-pattern iterations, and message size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MiniAppConfig {
    /// Number of MPI processes.
    pub procs: u32,
    /// Number of communication-pattern iterations within one execution.
    pub iterations: u32,
    /// Payload size per message, in bytes (the paper's figures use 1).
    pub message_bytes: u64,
    /// Seed fixing the random topology of the unstructured-mesh pattern.
    /// Part of the *program*, not the run: every run of a configuration
    /// uses the same mesh, exactly as a real mesh app re-runs the same
    /// decomposition.
    pub topology_seed: u64,
    /// Out-degree of each rank in the unstructured-mesh pattern.
    pub mesh_degree: u32,
}

impl Default for MiniAppConfig {
    fn default() -> Self {
        MiniAppConfig {
            procs: 4,
            iterations: 1,
            message_bytes: 1,
            topology_seed: 0xA17AC1,
            mesh_degree: 3,
        }
    }
}

impl MiniAppConfig {
    /// A configuration with the given process count, other fields default.
    pub fn with_procs(procs: u32) -> Self {
        MiniAppConfig {
            procs,
            ..Default::default()
        }
    }

    /// Builder-style: set the iteration count.
    pub fn iterations(mut self, iterations: u32) -> Self {
        self.iterations = iterations;
        self
    }

    /// Builder-style: set the message size.
    pub fn message_bytes(mut self, bytes: u64) -> Self {
        self.message_bytes = bytes;
        self
    }

    /// Builder-style: set the mesh topology seed.
    pub fn topology_seed(mut self, seed: u64) -> Self {
        self.topology_seed = seed;
        self
    }

    /// Builder-style: set the mesh degree.
    pub fn mesh_degree(mut self, degree: u32) -> Self {
        self.mesh_degree = degree;
        self
    }

    /// Panic-checked validation used by the pattern builders.
    pub(crate) fn validate(&self, min_procs: u32) {
        assert!(
            self.procs >= min_procs,
            "pattern requires at least {min_procs} processes, got {}",
            self.procs
        );
        assert!(self.iterations >= 1, "iterations must be at least 1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = MiniAppConfig::with_procs(16)
            .iterations(2)
            .message_bytes(64)
            .topology_seed(7)
            .mesh_degree(5);
        assert_eq!(c.procs, 16);
        assert_eq!(c.iterations, 2);
        assert_eq!(c.message_bytes, 64);
        assert_eq!(c.topology_seed, 7);
        assert_eq!(c.mesh_degree, 5);
    }

    #[test]
    fn default_matches_paper_defaults() {
        let c = MiniAppConfig::default();
        assert_eq!(c.message_bytes, 1, "paper figures use 1-byte messages");
        assert_eq!(c.iterations, 1);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn validate_rejects_too_few_procs() {
        MiniAppConfig::with_procs(1).validate(2);
    }
}
