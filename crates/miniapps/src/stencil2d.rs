//! A 2-D stencil halo exchange — the *deterministic* control pattern.
//!
//! Ranks form a (nearly) square process grid; each iteration every rank
//! exchanges halos with its four neighbours using **named sources and
//! tags** (as well-written stencil codes do). With fully specified
//! matching there is no race to win: the kernel distance between runs is
//! exactly zero at any injected ND percentage. The course uses it as the
//! negative control next to the racy patterns — network delays alone do
//! not create communication non-determinism; wildcard matching does.

use crate::config::MiniAppConfig;
use anacin_mpisim::program::{Program, ProgramBuilder};
use anacin_mpisim::types::{Rank, Tag};

/// The process-grid shape used for `procs` ranks: the most square
/// `rows × cols` factorisation with `rows * cols == procs`.
pub fn grid_shape(procs: u32) -> (u32, u32) {
    assert!(procs >= 1);
    let mut best = (1, procs);
    let mut r = 1;
    while r * r <= procs {
        if procs.is_multiple_of(r) {
            best = (r, procs / r);
        }
        r += 1;
    }
    best
}

fn neighbours(rank: u32, rows: u32, cols: u32) -> Vec<(Rank, Tag)> {
    let (row, col) = (rank / cols, rank % cols);
    let mut out = Vec::with_capacity(4);
    // Directions get distinct tags so reverse halves of an exchange can
    // never cross-match: 0 = up, 1 = down, 2 = left, 3 = right.
    if row > 0 {
        out.push((Rank(rank - cols), Tag(0)));
    }
    if row + 1 < rows {
        out.push((Rank(rank + cols), Tag(1)));
    }
    if col > 0 {
        out.push((Rank(rank - 1), Tag(2)));
    }
    if col + 1 < cols {
        out.push((Rank(rank + 1), Tag(3)));
    }
    out
}

/// Build the stencil program.
///
/// # Panics
/// Panics when `config.procs < 2` or `config.iterations < 1`.
pub fn build(config: &MiniAppConfig) -> Program {
    config.validate(2);
    let n = config.procs;
    let (rows, cols) = grid_shape(n);
    let mut b = ProgramBuilder::new(n);
    for iter in 0..config.iterations {
        let tag_base = iter as i32 * 8;
        for r in 0..n {
            let mut rb = b.rank(Rank(r));
            rb.set_context(["main", "stencil_step", "exchange_halos"]);
            let mut reqs = Vec::new();
            // Post named receives for each inbound halo. The inbound tag
            // is the neighbour's outbound direction tag.
            rb.push_frame("post_halo_receives");
            for (nbr, _) in neighbours(r, rows, cols) {
                // Which direction does `nbr` send to reach us?
                let inbound_tag = neighbours(nbr.0, rows, cols)
                    .into_iter()
                    .find(|(t, _)| t.0 == r)
                    .map(|(_, tag)| tag)
                    .expect("neighbour relation is symmetric");
                reqs.push(rb.irecv(nbr, Tag(tag_base + inbound_tag.0).into()));
            }
            rb.pop_frame();
            rb.push_frame("send_halos");
            for (nbr, tag) in neighbours(r, rows, cols) {
                reqs.push(rb.isend(nbr, Tag(tag_base + tag.0), config.message_bytes));
            }
            rb.pop_frame();
            rb.waitall(reqs);
            rb.set_context(["main", "stencil_step", "apply_stencil"]);
            rb.compute(300);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anacin_mpisim::prelude::*;

    #[test]
    fn grid_shapes() {
        assert_eq!(grid_shape(1), (1, 1));
        assert_eq!(grid_shape(4), (2, 2));
        assert_eq!(grid_shape(6), (2, 3));
        assert_eq!(grid_shape(12), (3, 4));
        assert_eq!(grid_shape(16), (4, 4));
        assert_eq!(grid_shape(7), (1, 7));
    }

    #[test]
    fn neighbour_symmetry() {
        let (rows, cols) = (3, 4);
        for r in 0..12u32 {
            for (nbr, _) in neighbours(r, rows, cols) {
                let back: Vec<u32> = neighbours(nbr.0, rows, cols)
                    .iter()
                    .map(|(n, _)| n.0)
                    .collect();
                assert!(back.contains(&r), "{r} -> {nbr} not symmetric");
            }
        }
    }

    #[test]
    fn balanced_and_completes() {
        for procs in [2, 4, 6, 9, 12, 16] {
            let p = build(&MiniAppConfig::with_procs(procs).iterations(2));
            p.check_balance()
                .unwrap_or_else(|e| panic!("procs={procs}: {e}"));
            let t = simulate(&p, &SimConfig::with_nd_percent(100.0, 5))
                .unwrap_or_else(|e| panic!("procs={procs}: {e}"));
            assert_eq!(t.meta.unmatched_messages, 0);
            t.validate().unwrap();
        }
    }

    #[test]
    fn no_wildcards_at_all() {
        let p = build(&MiniAppConfig::with_procs(12));
        let t = simulate(&p, &SimConfig::with_nd_percent(100.0, 1)).unwrap();
        assert_eq!(t.wildcard_recv_count(), 0);
    }

    #[test]
    fn deterministic_even_at_full_nd() {
        // The headline property: named matching ⇒ identical communication
        // structure across seeds even with every message delayed.
        let p = build(&MiniAppConfig::with_procs(9).iterations(2));
        let base = simulate(&p, &SimConfig::with_nd_percent(100.0, 0)).unwrap();
        for seed in 1..10 {
            let t = simulate(&p, &SimConfig::with_nd_percent(100.0, seed)).unwrap();
            for r in 0..9 {
                assert_eq!(
                    t.match_order(Rank(r)),
                    base.match_order(Rank(r)),
                    "seed {seed} rank {r}"
                );
            }
        }
    }

    #[test]
    fn message_count_matches_grid_edges() {
        // 3×4 grid: horizontal edges 3*3, vertical 2*4 → 17 undirected,
        // 34 directed messages per iteration.
        let p = build(&MiniAppConfig::with_procs(12));
        assert_eq!(p.total_sends(), 34);
    }
}
