//! The pattern registry: one name per packaged mini-application.

use crate::config::MiniAppConfig;
use anacin_mpisim::program::Program;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The communication patterns packaged with the toolkit (paper §II-B) plus
/// the collectives extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pattern {
    /// Many senders, one wildcard-receiving root.
    MessageRace,
    /// Two all-to-all exchange phases per iteration (hypre-like).
    Amg2013,
    /// Halo exchange over a random neighbour topology (Chatterbug-like).
    UnstructuredMesh,
    /// Collective-heavy phase built on point-to-point (extension; the
    /// paper lists collectives as future work).
    Collectives,
    /// Deterministic 2-D stencil halo exchange (extension): named sources
    /// and tags — the negative control that stays reproducible at any
    /// injected ND percentage.
    Stencil2d,
}

impl Pattern {
    /// All packaged patterns.
    pub const ALL: [Pattern; 5] = [
        Pattern::MessageRace,
        Pattern::Amg2013,
        Pattern::UnstructuredMesh,
        Pattern::Collectives,
        Pattern::Stencil2d,
    ];

    /// Canonical name (as accepted by [`Pattern::from_str`]).
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::MessageRace => "message-race",
            Pattern::Amg2013 => "amg2013",
            Pattern::UnstructuredMesh => "unstructured-mesh",
            Pattern::Collectives => "collectives",
            Pattern::Stencil2d => "stencil2d",
        }
    }

    /// Build the pattern's program for `config`.
    pub fn build(&self, config: &MiniAppConfig) -> Program {
        match self {
            Pattern::MessageRace => crate::message_race::build(config),
            Pattern::Amg2013 => crate::amg2013::build(config),
            Pattern::UnstructuredMesh => crate::unstructured_mesh::build(config),
            Pattern::Collectives => crate::collectives_app::build(config),
            Pattern::Stencil2d => crate::stencil2d::build(config),
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error for unknown pattern names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownPattern(pub String);

impl fmt::Display for UnknownPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown pattern '{}'; expected one of message-race, amg2013, unstructured-mesh, collectives",
            self.0
        )
    }
}

impl std::error::Error for UnknownPattern {}

impl FromStr for Pattern {
    type Err = UnknownPattern;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "message-race" | "message_race" | "race" => Ok(Pattern::MessageRace),
            "amg2013" | "amg" => Ok(Pattern::Amg2013),
            "unstructured-mesh" | "unstructured_mesh" | "mesh" => Ok(Pattern::UnstructuredMesh),
            "collectives" => Ok(Pattern::Collectives),
            "stencil2d" | "stencil" => Ok(Pattern::Stencil2d),
            other => Err(UnknownPattern(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anacin_mpisim::prelude::*;

    #[test]
    fn names_round_trip() {
        for p in Pattern::ALL {
            assert_eq!(p.name().parse::<Pattern>().unwrap(), p);
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!("race".parse::<Pattern>().unwrap(), Pattern::MessageRace);
        assert_eq!("AMG".parse::<Pattern>().unwrap(), Pattern::Amg2013);
        assert!("nope".parse::<Pattern>().is_err());
        assert!("nope"
            .parse::<Pattern>()
            .unwrap_err()
            .to_string()
            .contains("unknown pattern"));
    }

    #[test]
    fn every_pattern_builds_and_runs() {
        for p in Pattern::ALL {
            let cfg = MiniAppConfig::with_procs(4);
            let prog = p.build(&cfg);
            prog.check_balance().unwrap_or_else(|e| panic!("{p}: {e}"));
            prog.check_requests().unwrap_or_else(|e| panic!("{p}: {e}"));
            let t = simulate(&prog, &SimConfig::with_nd_percent(100.0, 1))
                .unwrap_or_else(|e| panic!("{p}: {e}"));
            assert_eq!(t.meta.unmatched_messages, 0, "{p}");
        }
    }
}
