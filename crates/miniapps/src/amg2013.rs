//! The AMG 2013 communication pattern.
//!
//! Paper §II-B: "AMG 2013 expands on the message race pattern by allowing
//! each process to send a message to all other processes. Each process in
//! an AMG 2013 pattern does this twice." Per iteration the pattern runs
//! two all-to-all exchange *phases*; every rank isends to all peers, posts
//! wildcard irecvs for the inbound messages, and waits — the communication
//! shape of hypre's BoomerAMG setup/solve sweeps.
//!
//! Call paths mimic hypre's, giving the root-cause analysis its most
//! realistic input (the paper's Figure 8 is produced from this app).

use crate::config::MiniAppConfig;
use anacin_mpisim::program::{Program, ProgramBuilder};
use anacin_mpisim::types::{Rank, Tag, TagSpec};

/// Frames of the two exchange phases, mimicking hypre call paths.
const PHASE_FRAMES: [[&str; 3]; 2] = [
    [
        "main",
        "hypre_BoomerAMGSetup",
        "hypre_ParCSRMatrixExtractBExt",
    ],
    ["main", "hypre_BoomerAMGSolve", "hypre_ParCSRMatrixMatvec"],
];

/// Build the AMG 2013 pattern program.
///
/// # Panics
/// Panics when `config.procs < 2` or `config.iterations < 1`.
pub fn build(config: &MiniAppConfig) -> Program {
    config.validate(2);
    let n = config.procs;
    let mut b = ProgramBuilder::new(n);
    for iter in 0..config.iterations {
        for (phase, frames) in PHASE_FRAMES.iter().enumerate() {
            let tag = Tag((iter * 2 + phase as u32) as i32);
            for r in 0..n {
                let mut rb = b.rank(Rank(r));
                rb.set_context(frames.iter().copied());
                rb.push_frame("hypre_ParCSRCommHandleCreate");
                // Post all inbound wildcard receives first (hypre posts
                // irecvs before isends), then all sends, then wait.
                let mut reqs = Vec::with_capacity(2 * (n as usize - 1));
                for _ in 0..n - 1 {
                    reqs.push(rb.irecv_any(TagSpec::Tag(tag)));
                }
                for peer in 0..n {
                    if peer != r {
                        reqs.push(rb.isend(Rank(peer), tag, config.message_bytes));
                    }
                }
                rb.pop_frame();
                rb.push_frame("hypre_ParCSRCommHandleDestroy");
                rb.waitall(reqs);
                rb.pop_frame();
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anacin_mpisim::prelude::*;

    #[test]
    fn message_count_is_two_all_to_alls() {
        let n = 4u32;
        let p = build(&MiniAppConfig::with_procs(n));
        // Two phases of n*(n-1) messages each.
        assert_eq!(p.total_sends() as u32, 2 * n * (n - 1));
        assert!(p.check_balance().is_ok());
    }

    #[test]
    fn two_process_version_matches_paper_figure_3() {
        // The paper's Figure 3: 2 ranks, each sends to the other and
        // receives asynchronously, twice.
        let p = build(&MiniAppConfig::with_procs(2));
        assert_eq!(p.total_sends(), 4);
        assert_eq!(p.total_receives(), 4);
        let t = simulate(&p, &SimConfig::deterministic()).unwrap();
        assert_eq!(t.meta.unmatched_messages, 0);
    }

    #[test]
    fn completes_at_all_nd_levels_and_sizes() {
        for n in [2, 3, 5, 8] {
            let p = build(&MiniAppConfig::with_procs(n).iterations(2));
            for nd in [0.0, 100.0] {
                let t = simulate(&p, &SimConfig::with_nd_percent(nd, 3)).unwrap();
                assert_eq!(t.meta.unmatched_messages, 0, "n={n} nd={nd}");
                t.validate().unwrap();
            }
        }
    }

    #[test]
    fn hypre_frames_present() {
        let p = build(&MiniAppConfig::with_procs(3));
        let t = simulate(&p, &SimConfig::deterministic()).unwrap();
        let mut found_setup = false;
        let mut found_solve = false;
        for (_, e) in t.iter() {
            if let Some(s) = t.stacks().get(e.stack) {
                let joined = s.to_string();
                if joined.contains("hypre_BoomerAMGSetup") {
                    found_setup = true;
                }
                if joined.contains("hypre_BoomerAMGSolve") {
                    found_solve = true;
                }
            }
        }
        assert!(found_setup && found_solve);
    }

    #[test]
    fn exhibits_more_nondeterminism_than_race() {
        // Sanity: with all-to-all wildcard receives, distinct seeds should
        // essentially always differ at 100% ND.
        let p = build(&MiniAppConfig::with_procs(6));
        let mut orders = std::collections::HashSet::new();
        for seed in 0..10 {
            let t = simulate(&p, &SimConfig::with_nd_percent(100.0, seed)).unwrap();
            let all: Vec<_> = (0..6).map(|r| t.match_order(Rank(r))).collect();
            orders.insert(all);
        }
        assert!(orders.len() >= 8, "only {} distinct orders", orders.len());
    }

    #[test]
    fn wildcard_receives_dominate() {
        let p = build(&MiniAppConfig::with_procs(4));
        let t = simulate(&p, &SimConfig::deterministic()).unwrap();
        assert_eq!(t.wildcard_recv_count() as u32, 2 * 4 * 3);
    }
}
