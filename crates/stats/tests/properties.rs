//! Property-based tests of the statistics toolbox.

use anacin_stats::prelude::*;
use proptest::prelude::*;

fn sample() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Summary invariants: min ≤ q1 ≤ median ≤ q3 ≤ max, mean within
    /// [min, max], order invariance.
    #[test]
    fn summary_invariants(mut xs in sample()) {
        let s = Summary::of(&xs).unwrap();
        prop_assert!(s.min <= s.q1);
        prop_assert!(s.q1 <= s.median);
        prop_assert!(s.median <= s.q3);
        prop_assert!(s.q3 <= s.max);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
        // Order invariance (up to summation rounding in mean/std).
        xs.reverse();
        let s2 = Summary::of(&xs).unwrap();
        prop_assert_eq!(s2.min, s.min);
        prop_assert_eq!(s2.max, s.max);
        prop_assert_eq!(s2.median, s.median);
        let scale = s.std_dev.abs().max(s.mean.abs()).max(1.0);
        prop_assert!((s2.mean - s.mean).abs() <= 1e-12 * scale);
        prop_assert!((s2.std_dev - s.std_dev).abs() <= 1e-12 * scale);
    }

    /// Quantiles are monotone in q and bounded by the sample range.
    #[test]
    fn quantile_monotonicity(xs in sample(), qa in 0.0f64..=1.0, qb in 0.0f64..=1.0) {
        let (lo, hi) = (qa.min(qb), qa.max(qb));
        let vlo = quantile(&xs, lo);
        let vhi = quantile(&xs, hi);
        prop_assert!(vlo <= vhi + 1e-12);
        prop_assert!(vlo >= quantile(&xs, 0.0) - 1e-12);
        prop_assert!(vhi <= quantile(&xs, 1.0) + 1e-12);
    }

    /// The KDE is a density: non-negative everywhere sampled, and it
    /// integrates to ≈ 1 on a grid spanning the data.
    #[test]
    fn kde_is_a_density(xs in prop::collection::vec(-100.0f64..100.0, 2..60)) {
        let c = kde_curve(&xs, 256);
        prop_assert!(c.densities.iter().all(|&d| d >= 0.0 && d.is_finite()));
        let integral = c.integral();
        prop_assert!((integral - 1.0).abs() < 0.05, "integral {integral}");
    }

    /// Ranks are a permutation-respecting map: the multiset of ranks sums
    /// to n(n+1)/2 regardless of ties.
    #[test]
    fn ranks_sum_invariant(xs in sample()) {
        let r = ranks(&xs);
        let n = xs.len() as f64;
        let total: f64 = r.iter().sum();
        prop_assert!((total - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    /// Correlations live in [-1, 1] and self-correlation of a
    /// non-constant sample is 1.
    #[test]
    fn correlation_bounds(xs in prop::collection::vec(-1e3f64..1e3, 3..50)) {
        let ys: Vec<f64> = xs.iter().rev().copied().collect();
        for v in [pearson(&xs, &ys), spearman(&xs, &ys), kendall_tau(&xs, &ys)] {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v), "{v}");
        }
        let distinct: std::collections::HashSet<u64> =
            xs.iter().map(|x| x.to_bits()).collect();
        if distinct.len() > 1 {
            prop_assert!((pearson(&xs, &xs) - 1.0).abs() < 1e-9);
            prop_assert!((spearman(&xs, &xs) - 1.0).abs() < 1e-9);
        }
    }

    /// Cliff's delta is antisymmetric and bounded.
    #[test]
    fn cliffs_delta_properties(
        a in prop::collection::vec(-1e3f64..1e3, 1..30),
        b in prop::collection::vec(-1e3f64..1e3, 1..30),
    ) {
        let d = cliffs_delta(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&d));
        prop_assert!((d + cliffs_delta(&b, &a)).abs() < 1e-12);
    }

    /// Bootstrap CIs bracket the point estimate and shrink when the
    /// sample is constant.
    #[test]
    fn bootstrap_brackets(xs in prop::collection::vec(-1e3f64..1e3, 2..60), seed in 0u64..100) {
        let ci = mean_ci(&xs, seed);
        prop_assert!(ci.lo <= ci.point + 1e-9);
        prop_assert!(ci.point <= ci.hi + 1e-9);
    }

    /// The Mann–Whitney U statistic is bounded by n1*n2 and the two
    /// one-sided tests are complementary.
    #[test]
    fn mwu_bounds(
        a in prop::collection::vec(-1e3f64..1e3, 2..30),
        b in prop::collection::vec(-1e3f64..1e3, 2..30),
    ) {
        let r = mann_whitney_u(&a, &b);
        prop_assert!(r.u >= 0.0);
        prop_assert!(r.u <= (a.len() * b.len()) as f64 + 1e-9);
        prop_assert!((0.0..=1.0).contains(&r.p_greater));
        prop_assert!((0.0..=1.0).contains(&r.p_two_sided));
    }

    /// Histograms conserve mass and respect bin ranges.
    #[test]
    fn histogram_mass(xs in sample(), bins in 1usize..32) {
        let h = Histogram::of(&xs, bins);
        prop_assert_eq!(h.total() as usize, xs.len());
        let freq_sum: f64 = h.frequencies().iter().sum();
        prop_assert!((freq_sum - 1.0).abs() < 1e-9);
    }
}
