//! Mann–Whitney U test (normal approximation with tie correction).
//!
//! Used to back the course's Figure-5/6 claims ("32 processes is *more*
//! non-deterministic than 16") with an actual two-sample test rather than
//! an eyeballed violin.

use crate::correlation::ranks;

/// Result of a Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MwuResult {
    /// The U statistic of the first sample.
    pub u: f64,
    /// Standardised z score (ties-corrected normal approximation).
    pub z: f64,
    /// Two-sided p-value from the normal approximation.
    pub p_two_sided: f64,
    /// One-sided p-value for the alternative "sample a tends larger".
    pub p_greater: f64,
}

/// Standard normal CDF (Abramowitz–Stegun erf approximation, |err| < 1.5e-7).
pub fn normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.3275911 * x.abs());
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-x * x).exp();
    let erf = if x >= 0.0 { erf } else { -erf };
    0.5 * (1.0 + erf)
}

/// Two-sample Mann–Whitney U test.
///
/// # Panics
/// Panics when either sample is empty.
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> MwuResult {
    assert!(!a.is_empty() && !b.is_empty(), "samples must be nonempty");
    let n1 = a.len() as f64;
    let n2 = b.len() as f64;
    let mut pooled: Vec<f64> = Vec::with_capacity(a.len() + b.len());
    pooled.extend_from_slice(a);
    pooled.extend_from_slice(b);
    let r = ranks(&pooled);
    let r1: f64 = r[..a.len()].iter().sum();
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;
    // Tie correction for the variance.
    let mut sorted = pooled.clone();
    sorted.sort_by(f64::total_cmp);
    let n = n1 + n2;
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let mu = n1 * n2 / 2.0;
    let sigma_sq = n1 * n2 / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
    let z = if sigma_sq > 0.0 {
        (u1 - mu) / sigma_sq.sqrt()
    } else {
        0.0
    };
    let p_greater = 1.0 - normal_cdf(z);
    let p_two_sided = 2.0 * (1.0 - normal_cdf(z.abs())).min(0.5);
    MwuResult {
        u: u1,
        z,
        p_two_sided,
        p_greater,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(6.0) > 0.999999);
    }

    #[test]
    fn clearly_shifted_samples() {
        let a: Vec<f64> = (0..20).map(|i| 10.0 + i as f64 * 0.1).collect();
        let b: Vec<f64> = (0..20).map(|i| 0.0 + i as f64 * 0.1).collect();
        let r = mann_whitney_u(&a, &b);
        assert!(r.p_greater < 0.001, "p_greater={}", r.p_greater);
        assert!(r.p_two_sided < 0.002);
        assert!(r.z > 3.0);
        // Symmetric in the other direction.
        let r2 = mann_whitney_u(&b, &a);
        assert!(r2.p_greater > 0.999);
    }

    #[test]
    fn identical_samples_not_significant() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = mann_whitney_u(&a, &a);
        assert!((r.z).abs() < 1e-9);
        assert!(r.p_two_sided > 0.9);
    }

    #[test]
    fn u_statistic_hand_computed() {
        // a = [1,2], b = [3,4]: every b beats every a, U1 = 0.
        let r = mann_whitney_u(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(r.u, 0.0);
        // reversed: U1 = n1*n2 = 4.
        let r2 = mann_whitney_u(&[3.0, 4.0], &[1.0, 2.0]);
        assert_eq!(r2.u, 4.0);
    }

    #[test]
    fn heavy_ties_do_not_crash() {
        let a = [1.0; 10];
        let b = [1.0; 10];
        let r = mann_whitney_u(&a, &b);
        assert_eq!(r.z, 0.0);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_sample_panics() {
        mann_whitney_u(&[], &[1.0]);
    }
}
