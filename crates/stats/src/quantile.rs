//! Quantiles with linear interpolation (type-7, the R/NumPy default).

/// Quantile of an already-sorted sample, `q ∈ [0, 1]`, linear
/// interpolation between order statistics.
///
/// # Panics
/// Panics on an empty sample or `q` outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1], got {q}");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Quantile of an unsorted sample (sorts a copy).
///
/// NaNs are totally ordered after every finite value (`f64::total_cmp`)
/// rather than panicking; callers that care can screen with
/// [`crate::nan_count`] first.
pub fn quantile(sample: &[f64], q: f64) -> f64 {
    let mut s = sample.to_vec();
    s.sort_by(f64::total_cmp);
    quantile_sorted(&s, q)
}

/// Several quantiles at once over one sort.
///
/// NaNs sort after every finite value, as in [`quantile`].
pub fn quantiles(sample: &[f64], qs: &[f64]) -> Vec<f64> {
    let mut s = sample.to_vec();
    s.sort_by(f64::total_cmp);
    qs.iter().map(|&q| quantile_sorted(&s, q)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&s, 0.0), 1.0);
        assert_eq!(quantile(&s, 1.0), 4.0);
    }

    #[test]
    fn median_interpolation() {
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0], 0.5), 2.5);
        assert_eq!(quantile(&[1.0, 2.0, 3.0], 0.5), 2.0);
    }

    #[test]
    fn matches_numpy_type7() {
        // numpy.percentile([1,2,3,4], 25) == 1.75
        assert!((quantile(&[1.0, 2.0, 3.0, 4.0], 0.25) - 1.75).abs() < 1e-12);
        // numpy.percentile([15,20,35,40,50], 40) == 29.0
        assert!((quantile(&[15.0, 20.0, 35.0, 40.0, 50.0], 0.4) - 29.0).abs() < 1e-12);
    }

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
    }

    #[test]
    fn multi_quantiles() {
        let qs = quantiles(&[4.0, 1.0, 3.0, 2.0], &[0.0, 0.5, 1.0]);
        assert_eq!(qs, vec![1.0, 2.5, 4.0]);
    }

    #[test]
    fn nan_does_not_panic_and_sorts_last() {
        // A contaminated sample must not abort an analysis pipeline: NaNs
        // order after every finite value, so low quantiles stay finite.
        let s = [2.0, f64::NAN, 1.0, 3.0];
        assert_eq!(quantile(&s, 0.0), 1.0);
        assert!(quantile(&s, 1.0).is_nan());
        let qs = quantiles(&s, &[0.0, 1.0]);
        assert_eq!(qs[0], 1.0);
        assert!(qs[1].is_nan());
    }

    #[test]
    fn all_nan_single_element() {
        assert!(quantile(&[f64::NAN], 0.5).is_nan());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "[0,1]")]
    fn out_of_range_panics() {
        quantile(&[1.0], 1.5);
    }
}
