//! Descriptive statistics.

use serde::{Deserialize, Serialize};

/// Five-number-plus summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Returns `None` for an empty sample.
    pub fn of(sample: &[f64]) -> Option<Summary> {
        if sample.is_empty() {
            return None;
        }
        let n = sample.len();
        let mean = sample.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            sample.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = sample.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            q1: crate::quantile::quantile_sorted(&sorted, 0.25),
            median: crate::quantile::quantile_sorted(&sorted, 0.5),
            q3: crate::quantile::quantile_sorted(&sorted, 0.75),
            max: sorted[n - 1],
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[5.0]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev of this classic example is ~2.138.
        assert!((s.std_dev - 2.13809).abs() < 1e-4);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
        assert!(s.iqr() > 0.0);
    }

    #[test]
    fn order_invariance() {
        let a = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        let b = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a, b);
    }
}
