//! Gaussian kernel density estimation — the smooth body of a violin plot.

use std::f64::consts::PI;

/// Silverman's rule-of-thumb bandwidth. Falls back to a small positive
/// value for degenerate (constant) samples so the KDE stays well-defined.
pub fn silverman_bandwidth(sample: &[f64]) -> f64 {
    let n = sample.len();
    if n < 2 {
        return 1.0;
    }
    let mean = sample.iter().sum::<f64>() / n as f64;
    let var = sample.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
    let sd = var.sqrt();
    let iqr = crate::quantile::quantile(sample, 0.75) - crate::quantile::quantile(sample, 0.25);
    let sigma = if iqr > 0.0 { sd.min(iqr / 1.34) } else { sd };
    let h = 0.9 * sigma * (n as f64).powf(-0.2);
    if h > 0.0 {
        h
    } else {
        // Constant sample: any positive bandwidth gives a spike at the value.
        (mean.abs() * 1e-3).max(1e-9)
    }
}

/// Evaluate the Gaussian KDE of `sample` with bandwidth `h` at `x`.
pub fn kde_at(sample: &[f64], h: f64, x: f64) -> f64 {
    assert!(h > 0.0, "bandwidth must be positive");
    if sample.is_empty() {
        return 0.0;
    }
    let norm = 1.0 / ((2.0 * PI).sqrt() * h * sample.len() as f64);
    sample
        .iter()
        .map(|&xi| {
            let z = (x - xi) / h;
            (-0.5 * z * z).exp()
        })
        .sum::<f64>()
        * norm
}

/// A KDE evaluated on a regular grid.
#[derive(Debug, Clone, PartialEq)]
pub struct KdeCurve {
    /// Grid positions.
    pub xs: Vec<f64>,
    /// Density at each grid position.
    pub densities: Vec<f64>,
    /// The bandwidth used.
    pub bandwidth: f64,
}

/// Evaluate the KDE on `points` grid positions spanning the sample range
/// extended by two bandwidths on each side (the conventional violin body).
pub fn kde_curve(sample: &[f64], points: usize) -> KdeCurve {
    assert!(points >= 2, "need at least two grid points");
    let h = silverman_bandwidth(sample);
    let (lo, hi) = sample
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, u), &x| {
            (l.min(x), u.max(x))
        });
    let (lo, hi) = if sample.is_empty() {
        (0.0, 1.0)
    } else {
        (lo - 2.0 * h, hi + 2.0 * h)
    };
    let step = (hi - lo) / (points - 1) as f64;
    let xs: Vec<f64> = (0..points).map(|i| lo + step * i as f64).collect();
    let densities = xs.iter().map(|&x| kde_at(sample, h, x)).collect();
    KdeCurve {
        xs,
        densities,
        bandwidth: h,
    }
}

impl KdeCurve {
    /// The maximum density on the grid (used to scale violin widths).
    pub fn peak(&self) -> f64 {
        self.densities.iter().copied().fold(0.0, f64::max)
    }

    /// Numerically integrate the curve (trapezoid); ≈ 1 for a well-chosen
    /// grid.
    pub fn integral(&self) -> f64 {
        let mut total = 0.0;
        for i in 1..self.xs.len() {
            let dx = self.xs[i] - self.xs[i - 1];
            total += 0.5 * (self.densities[i] + self.densities[i - 1]) * dx;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kde_integrates_to_one() {
        let sample = [1.0, 2.0, 2.5, 3.0, 10.0, 11.0];
        let c = kde_curve(&sample, 512);
        assert!(
            (c.integral() - 1.0).abs() < 0.02,
            "integral {}",
            c.integral()
        );
    }

    #[test]
    fn kde_peaks_near_modes() {
        let sample = [0.0, 0.1, -0.1, 0.05, 5.0];
        let c = kde_curve(&sample, 256);
        let argmax =
            c.xs.iter()
                .zip(&c.densities)
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
        assert!(argmax.abs() < 0.5, "peak at {argmax}, expected near 0");
    }

    #[test]
    fn symmetric_sample_symmetric_density() {
        let sample = [-1.0, 1.0];
        let h = silverman_bandwidth(&sample);
        assert!((kde_at(&sample, h, 0.5) - kde_at(&sample, h, -0.5)).abs() < 1e-12);
    }

    #[test]
    fn constant_sample_is_well_defined() {
        let sample = [3.0; 10];
        let h = silverman_bandwidth(&sample);
        assert!(h > 0.0);
        let c = kde_curve(&sample, 64);
        assert!(c.peak() > 0.0);
        assert!(c.peak().is_finite());
    }

    #[test]
    fn empty_sample_zero_density() {
        assert_eq!(kde_at(&[], 1.0, 0.0), 0.0);
        let c = kde_curve(&[], 16);
        assert_eq!(c.peak(), 0.0);
    }

    #[test]
    fn nan_sample_bandwidth_is_positive() {
        // A NaN poisons mean/sd, but the fallback must still yield a
        // positive bandwidth rather than panicking in the sort.
        let h = silverman_bandwidth(&[1.0, f64::NAN, 2.0]);
        assert!(h > 0.0, "bandwidth {h}");
    }

    #[test]
    fn single_element_bandwidth_is_positive() {
        assert!(silverman_bandwidth(&[42.0]) > 0.0);
        assert!(silverman_bandwidth(&[]) > 0.0);
    }

    #[test]
    fn nan_count_helper() {
        assert_eq!(crate::nan_count(&[1.0, f64::NAN, 2.0, f64::NAN]), 2);
        assert_eq!(crate::nan_count(&[]), 0);
        assert_eq!(crate::nan_count(&[0.0]), 0);
    }

    #[test]
    fn bandwidth_shrinks_with_n() {
        let small: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let large: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        assert!(silverman_bandwidth(&large) < silverman_bandwidth(&small));
    }
}
