//! # anacin-stats
//!
//! Statistics for non-determinism measurement campaigns: descriptive
//! summaries, quantiles, Gaussian KDE and violin summaries (the paper's
//! figures 5–7 are violins over kernel-distance samples), bootstrap
//! confidence intervals, Pearson/Spearman correlation (the Figure-7
//! monotonicity check), the Mann–Whitney U test (backing "32 processes >
//! 16 processes" with a p-value), and simple histograms.
//!
//! ```
//! use anacin_stats::prelude::*;
//!
//! let sample = [1.0, 2.0, 2.5, 3.0, 10.0];
//! let s = Summary::of(&sample).unwrap();
//! assert_eq!(s.n, 5);
//! let v = ViolinSummary::from_sample("demo", &sample).unwrap();
//! assert!(v.peak_density() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod bootstrap;
pub mod correlation;
pub mod describe;
pub mod effect;
pub mod histogram;
pub mod kde;
pub mod mwu;
pub mod quantile;
pub mod violin;

/// Number of NaN values in a sample.
///
/// The sorting helpers in this crate order NaNs after every finite value
/// (`f64::total_cmp`) instead of panicking; pipelines that want to *report*
/// contaminated samples (e.g. the `stats/nan_distances` campaign metric)
/// screen with this first.
pub fn nan_count(sample: &[f64]) -> usize {
    sample.iter().filter(|x| x.is_nan()).count()
}

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::bootstrap::{bootstrap_ci, mean_ci, ConfidenceInterval};
    pub use crate::correlation::{pearson, ranks, spearman};
    pub use crate::describe::Summary;
    pub use crate::effect::{cliffs_delta, cliffs_magnitude, kendall_tau, linear_fit, LinearFit};
    pub use crate::histogram::Histogram;
    pub use crate::kde::{kde_curve, silverman_bandwidth, KdeCurve};
    pub use crate::mwu::{mann_whitney_u, normal_cdf, MwuResult};
    pub use crate::nan_count;
    pub use crate::quantile::{quantile, quantile_sorted, quantiles};
    pub use crate::violin::ViolinSummary;
}

pub use describe::Summary;
pub use violin::ViolinSummary;
