//! Violin-plot summaries.
//!
//! The paper's intermediate/advanced figures are violin plots of kernel
//! distance samples ("a violin plot of the sample of kernel distances
//! calculated for the input MPI application", §II-B). A
//! [`ViolinSummary`] holds everything a renderer needs: the five-number
//! summary plus the KDE body.

use crate::describe::Summary;
use crate::kde::{kde_curve, KdeCurve};
use serde::{Deserialize, Serialize};

/// The data behind one violin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViolinSummary {
    /// Label shown under the violin (e.g. "32 procs").
    pub label: String,
    /// Five-number summary of the sample.
    pub summary: Summary,
    /// KDE grid positions (the violin's vertical axis).
    pub kde_xs: Vec<f64>,
    /// KDE densities (the violin's half-widths before scaling).
    pub kde_densities: Vec<f64>,
    /// The raw sample (kept for downstream tests/analyses).
    pub sample: Vec<f64>,
}

impl ViolinSummary {
    /// Build a violin from a sample. Returns `None` on an empty sample.
    pub fn from_sample(label: impl Into<String>, sample: &[f64]) -> Option<ViolinSummary> {
        let summary = Summary::of(sample)?;
        let KdeCurve { xs, densities, .. } = kde_curve(sample, 128);
        Some(ViolinSummary {
            label: label.into(),
            summary,
            kde_xs: xs,
            kde_densities: densities,
            sample: sample.to_vec(),
        })
    }

    /// Peak density (for width normalisation across a violin family).
    pub fn peak_density(&self) -> f64 {
        self.kde_densities.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sample_populates_everything() {
        let v = ViolinSummary::from_sample("16 procs", &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(v.label, "16 procs");
        assert_eq!(v.summary.n, 4);
        assert_eq!(v.kde_xs.len(), 128);
        assert_eq!(v.kde_densities.len(), 128);
        assert!(v.peak_density() > 0.0);
        assert_eq!(v.sample.len(), 4);
    }

    #[test]
    fn empty_sample_is_none() {
        assert!(ViolinSummary::from_sample("x", &[]).is_none());
    }

    #[test]
    fn medians_order_violins() {
        let lo = ViolinSummary::from_sample("lo", &[1.0, 1.1, 0.9]).unwrap();
        let hi = ViolinSummary::from_sample("hi", &[5.0, 5.2, 4.8]).unwrap();
        assert!(hi.summary.median > lo.summary.median);
    }
}
