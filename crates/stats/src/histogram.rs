//! Fixed-width histogram binning (used by bar-chart renderers and
//! diagnostics).

/// A fixed-width histogram over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive lower edge of the first bin.
    pub lo: f64,
    /// Exclusive upper edge of the last bin.
    pub hi: f64,
    /// Bin counts.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Bin `sample` into `bins` equal-width bins spanning its range.
    /// The maximum value is placed in the last bin.
    ///
    /// # Panics
    /// Panics when `bins == 0`.
    pub fn of(sample: &[f64], bins: usize) -> Histogram {
        assert!(bins > 0, "need at least one bin");
        if sample.is_empty() {
            return Histogram {
                lo: 0.0,
                hi: 1.0,
                counts: vec![0; bins],
            };
        }
        let lo = sample.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = sample.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let hi = if hi > lo { hi } else { lo + 1.0 };
        let width = (hi - lo) / bins as f64;
        let mut counts = vec![0u64; bins];
        for &x in sample {
            let b = (((x - lo) / width) as usize).min(bins - 1);
            counts[b] += 1;
        }
        Histogram { lo, hi, counts }
    }

    /// Total count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `(lo, hi)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// Relative frequencies summing to 1 (all zeros for an empty sample).
    pub fn frequencies(&self) -> Vec<f64> {
        let t = self.total();
        if t == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / t as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_cover_sample() {
        let h = Histogram::of(&[0.0, 1.0, 2.0, 3.0, 4.0], 5);
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts, vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn max_lands_in_last_bin() {
        let h = Histogram::of(&[0.0, 10.0], 2);
        assert_eq!(h.counts, vec![1, 1]);
    }

    #[test]
    fn constant_sample() {
        let h = Histogram::of(&[7.0; 4], 3);
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts[0], 4);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let h = Histogram::of(&[1.0, 2.0, 2.0, 5.0], 4);
        let f: f64 = h.frequencies().iter().sum();
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_all_zero() {
        let h = Histogram::of(&[], 3);
        assert_eq!(h.total(), 0);
        assert_eq!(h.frequencies(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn bin_edges_partition_range() {
        let h = Histogram::of(&[0.0, 9.0], 3);
        let (l0, h0) = h.bin_edges(0);
        let (l2, h2) = h.bin_edges(2);
        assert_eq!(l0, 0.0);
        assert!((h0 - 3.0).abs() < 1e-12);
        assert!((l2 - 6.0).abs() < 1e-12);
        assert!((h2 - 9.0).abs() < 1e-12);
    }
}
