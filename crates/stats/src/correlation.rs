//! Pearson and Spearman correlation.
//!
//! Spearman's ρ is the workhorse of the Figure-7 shape check: the paper's
//! claim is a *monotone* relationship between injected ND percentage and
//! measured kernel distance, which is exactly rank correlation.

/// Pearson product-moment correlation of two equal-length samples.
///
/// Returns 0 when either sample is constant (undefined correlation).
///
/// # Panics
/// Panics when lengths differ or are < 2.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "samples must be paired");
    assert!(x.len() >= 2, "need at least two pairs");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx).powi(2);
        syy += (b - my).powi(2);
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx.sqrt() * syy.sqrt())
    }
}

/// Fractional ranks with ties averaged (midranks).
pub fn ranks(sample: &[f64]) -> Vec<f64> {
    let n = sample.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| sample[a].total_cmp(&sample[b]));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && sample[idx[j + 1]] == sample[idx[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson on midranks).
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    pearson(&ranks(x), &ranks(y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_inverse() {
        let x = [1.0, 2.0, 3.0];
        let y = [9.0, 5.0, 1.0];
        assert!((pearson(&x, &y) + 1.0).abs() < 1e-12);
        assert!((spearman(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_nonlinear_is_spearman_one() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y) < 1.0);
    }

    #[test]
    fn constant_sample_yields_zero() {
        let x = [1.0, 1.0, 1.0];
        let y = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&x, &y), 0.0);
        assert_eq!(spearman(&x, &y), 0.0);
    }

    #[test]
    fn midranks_for_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
        let r2 = ranks(&[5.0, 5.0, 5.0]);
        assert_eq!(r2, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&x, &y).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "paired")]
    fn length_mismatch_panics() {
        pearson(&[1.0], &[1.0, 2.0]);
    }
}
