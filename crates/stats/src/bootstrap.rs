//! Bootstrap confidence intervals (percentile method).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lo: f64,
    /// Point estimate (statistic of the original sample).
    pub point: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level, e.g. 0.95.
    pub level: f64,
}

/// Percentile-bootstrap CI of `statistic` over `sample`.
///
/// # Panics
/// Panics on an empty sample, `resamples == 0`, or `level` outside (0, 1).
pub fn bootstrap_ci(
    sample: &[f64],
    statistic: impl Fn(&[f64]) -> f64,
    resamples: usize,
    level: f64,
    seed: u64,
) -> ConfidenceInterval {
    assert!(!sample.is_empty(), "bootstrap of empty sample");
    assert!(resamples > 0, "need at least one resample");
    assert!((0.0..1.0).contains(&level) && level > 0.0, "level in (0,1)");
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = sample.len();
    let mut stats = Vec::with_capacity(resamples);
    let mut buf = vec![0.0; n];
    for _ in 0..resamples {
        for slot in buf.iter_mut() {
            *slot = sample[rng.gen_range(0..n)];
        }
        stats.push(statistic(&buf));
    }
    stats.sort_by(f64::total_cmp);
    let alpha = 1.0 - level;
    ConfidenceInterval {
        lo: crate::quantile::quantile_sorted(&stats, alpha / 2.0),
        point: statistic(sample),
        hi: crate::quantile::quantile_sorted(&stats, 1.0 - alpha / 2.0),
        level,
    }
}

/// Convenience: 95% CI of the mean.
pub fn mean_ci(sample: &[f64], seed: u64) -> ConfidenceInterval {
    bootstrap_ci(
        sample,
        |s| s.iter().sum::<f64>() / s.len() as f64,
        2_000,
        0.95,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_brackets_the_point() {
        let sample: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
        let ci = mean_ci(&sample, 1);
        assert!(ci.lo <= ci.point);
        assert!(ci.point <= ci.hi);
        assert_eq!(ci.level, 0.95);
    }

    #[test]
    fn reproducible_given_seed() {
        let sample = [1.0, 2.0, 3.0, 4.0, 5.0];
        let a = mean_ci(&sample, 9);
        let b = mean_ci(&sample, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn narrow_for_constant_sample() {
        let sample = [4.0; 30];
        let ci = mean_ci(&sample, 0);
        assert_eq!(ci.lo, 4.0);
        assert_eq!(ci.hi, 4.0);
    }

    #[test]
    fn wider_for_more_variance() {
        let tight: Vec<f64> = (0..40).map(|i| 10.0 + 0.01 * (i % 3) as f64).collect();
        let wide: Vec<f64> = (0..40).map(|i| 10.0 + 3.0 * (i % 3) as f64).collect();
        let ct = mean_ci(&tight, 2);
        let cw = mean_ci(&wide, 2);
        assert!(cw.hi - cw.lo > ct.hi - ct.lo);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        mean_ci(&[], 0);
    }
}
