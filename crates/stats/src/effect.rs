//! Effect sizes and trend estimation: Kendall's τ, Cliff's delta, and
//! ordinary least squares — the quantitative backing for "how much more"
//! non-deterministic one setting is than another.

/// Kendall's τ-b rank correlation (tie-corrected).
///
/// # Panics
/// Panics when lengths differ or are < 2.
pub fn kendall_tau(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "samples must be paired");
    assert!(x.len() >= 2, "need at least two pairs");
    let n = x.len();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_x = 0i64;
    let mut ties_y = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            if dx == 0.0 && dy == 0.0 {
                ties_x += 1;
                ties_y += 1;
            } else if dx == 0.0 {
                ties_x += 1;
            } else if dy == 0.0 {
                ties_y += 1;
            } else if dx * dy > 0.0 {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as i64;
    let denom = (((n0 - ties_x) as f64) * ((n0 - ties_y) as f64)).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        (concordant - discordant) as f64 / denom
    }
}

/// Cliff's delta: P(a > b) − P(a < b) for a ∈ A, b ∈ B, in `[-1, 1]`.
/// δ = 1 means every value of `a` exceeds every value of `b` — the effect
/// size behind "32 processes is more non-deterministic than 16".
///
/// # Panics
/// Panics when either sample is empty.
pub fn cliffs_delta(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "samples must be nonempty");
    let mut gt = 0i64;
    let mut lt = 0i64;
    for &x in a {
        for &y in b {
            if x > y {
                gt += 1;
            } else if x < y {
                lt += 1;
            }
        }
    }
    (gt - lt) as f64 / (a.len() * b.len()) as f64
}

/// Conventional magnitude label for a Cliff's delta (Romano et al.).
pub fn cliffs_magnitude(delta: f64) -> &'static str {
    let d = delta.abs();
    if d < 0.147 {
        "negligible"
    } else if d < 0.33 {
        "small"
    } else if d < 0.474 {
        "medium"
    } else {
        "large"
    }
}

/// Ordinary least-squares fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
}

/// Fit a least-squares line.
///
/// # Panics
/// Panics when lengths differ or are < 2, or when `x` is constant.
pub fn linear_fit(x: &[f64], y: &[f64]) -> LinearFit {
    assert_eq!(x.len(), y.len(), "samples must be paired");
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|a| (a - mx).powi(2)).sum();
    assert!(sxx > 0.0, "x must not be constant");
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = y.iter().map(|b| (b - my).powi(2)).sum();
    let ss_res: f64 = x
        .iter()
        .zip(y)
        .map(|(a, b)| (b - (slope * a + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    };
    LinearFit {
        slope,
        intercept,
        r_squared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kendall_perfect_orders() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert!((kendall_tau(&x, &[10.0, 20.0, 30.0, 40.0]) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&x, &[40.0, 30.0, 20.0, 10.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_handles_ties() {
        let x = [1.0, 1.0, 2.0, 3.0];
        let y = [5.0, 6.0, 7.0, 8.0];
        let tau = kendall_tau(&x, &y);
        assert!(tau > 0.8 && tau <= 1.0);
        // All-tied x gives 0.
        assert_eq!(kendall_tau(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn cliffs_delta_extremes_and_overlap() {
        assert_eq!(cliffs_delta(&[10.0, 11.0], &[1.0, 2.0]), 1.0);
        assert_eq!(cliffs_delta(&[1.0, 2.0], &[10.0, 11.0]), -1.0);
        let d = cliffs_delta(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn cliffs_magnitude_labels() {
        assert_eq!(cliffs_magnitude(0.05), "negligible");
        assert_eq!(cliffs_magnitude(0.2), "small");
        assert_eq!(cliffs_magnitude(-0.4), "medium");
        assert_eq!(cliffs_magnitude(0.9), "large");
    }

    #[test]
    fn linear_fit_exact_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0, 7.0];
        let f = linear_fit(&x, &y);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_noisy_line_r2_below_one() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0];
        let y = [0.0, 1.2, 1.8, 3.3, 3.7];
        let f = linear_fit(&x, &y);
        assert!(f.slope > 0.8 && f.slope < 1.1);
        assert!(f.r_squared > 0.9 && f.r_squared < 1.0);
    }

    #[test]
    #[should_panic(expected = "constant")]
    fn linear_fit_constant_x_panics() {
        linear_fit(&[1.0, 1.0], &[1.0, 2.0]);
    }
}
