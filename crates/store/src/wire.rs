//! The store's binary wire format: little-endian primitives with
//! length-prefixed strings and sequences.
//!
//! The workspace's serde stand-in is a JSON *tree* codec — every value
//! round-trips through a heap-allocated `Value` — which is orders of
//! magnitude too slow (and too large on disk) for a warm artifact path
//! whose whole point is beating recomputation. Artifacts therefore encode
//! through this explicit byte writer/reader pair instead; the enclosing
//! store frame carries a schema version, so layout changes are gated
//! exactly like a serde `#[serde(version)]` bump would be (see
//! `docs/store.md` for the invalidation rules).
//!
//! Decoding is *total*: every read is bounds-checked and returns
//! [`WireError`] instead of panicking, so a corrupt or truncated payload
//! (which the checksum should already have caught) can never produce
//! garbage values or a crash.

use std::fmt;

/// A decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated {
        /// Bytes requested by the failing read.
        needed: usize,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// An enum tag byte had no corresponding variant.
    BadTag(u8),
    /// A string's bytes were not valid UTF-8.
    BadUtf8,
    /// A length prefix was implausibly large for the remaining buffer.
    BadLength(u64),
    /// Decoding finished with unconsumed bytes (layout drift).
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated payload: needed {needed} bytes, {remaining} left"
                )
            }
            WireError::BadTag(t) => write!(f, "unknown enum tag {t}"),
            WireError::BadUtf8 => write!(f, "string is not valid UTF-8"),
            WireError::BadLength(n) => write!(f, "length prefix {n} exceeds payload"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only binary encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer pre-sized for roughly `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i32`, little-endian.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` by bit pattern (exact round-trip, NaN included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write a sequence length prefix (callers then write each element).
    pub fn seq_len(&mut self, n: usize) {
        self.u64(n as u64);
    }
}

/// Bounds-checked binary decoder over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`, little-endian.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a `u32`, little-endian.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`, little-endian.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `i32`, little-endian.
    pub fn i32(&mut self) -> Result<i32, WireError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `bool`; any byte other than 0/1 is a decode error.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let n = self.checked_len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Read a sequence length prefix, validated against the remaining
    /// bytes assuming each element costs at least `min_elem_bytes` — so a
    /// corrupt length cannot trigger a huge allocation.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        self.checked_len(min_elem_bytes)
    }

    fn checked_len(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u64()?;
        let floor = (n as u128).saturating_mul(min_elem_bytes.max(1) as u128);
        if floor > self.remaining() as u128 {
            return Err(WireError::BadLength(n));
        }
        Ok(n as usize)
    }

    /// Assert the buffer is fully consumed (call after the last field).
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(123_456);
        w.u64(u64::MAX - 3);
        w.i32(-42);
        w.f64(-0.125);
        w.bool(true);
        w.bool(false);
        w.str("héllo");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 123_456);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i32().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn f64_round_trips_exactly() {
        for v in [0.0, -0.0, f64::MIN_POSITIVE, 1e300, f64::NAN, 0.1 + 0.2] {
            let mut w = ByteWriter::new();
            w.f64(v);
            let b = w.into_bytes();
            let got = ByteReader::new(&b).f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.u64(99);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(matches!(r.u64(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn corrupt_length_prefix_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX); // absurd sequence length
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.seq_len(4), Err(WireError::BadLength(_))));
        // Same guard on strings.
        let mut w = ByteWriter::new();
        w.u64(1 << 40);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.str(), Err(WireError::BadLength(_))));
    }

    #[test]
    fn bad_bool_and_trailing_bytes_detected() {
        let mut r = ByteReader::new(&[2]);
        assert_eq!(r.bool(), Err(WireError::BadTag(2)));
        let r = ByteReader::new(&[0, 0]);
        assert_eq!(r.finish(), Err(WireError::TrailingBytes(2)));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = ByteWriter::new();
        w.u64(2);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.str(), Err(WireError::BadUtf8));
    }
}
