//! # anacin-store
//!
//! A content-addressed, versioned artifact store for pipeline products.
//!
//! The whole anacin pipeline is bit-deterministic given (pattern,
//! configuration, seed, ND fraction): the same inputs always produce the
//! same trace, the same event graph, the same WL features and the same
//! Gram matrix, down to float bit patterns. That determinism is exactly
//! what makes memoization *sound* — a stored artifact keyed by its
//! semantic inputs can substitute for recomputation with zero behavioural
//! difference (cf. Aviram et al., deterministic execution as a foundation
//! for reuse; Hunold & Carpen-Amarie on versioned, verifiable experiment
//! artifacts for reproducible MPI benchmarking).
//!
//! Three layers:
//!
//! * [`Fingerprint`] / [`FingerprintHasher`] — stable 128-bit keys over
//!   canonical key material. The hash is frozen (fingerprints are file
//!   names); key evolution happens through the callers' key-schema
//!   version, never by editing the hash.
//! * [`Artifact`] + the wire module — compact, bit-deterministic binary
//!   codecs that domain crates implement for their own types.
//! * [`ArtifactStore`] — the sharded on-disk store: atomic publish
//!   (temp + fsync + rename), checksum footers, schema-version
//!   invalidation, an in-memory LRU front, byte-budget GC with pin
//!   guards, and activity counters that mirror into `crates/obs`.
//!
//! ```
//! use anacin_store::{ArtifactStore, DistanceSample, Fingerprint};
//!
//! let root = std::env::temp_dir().join(format!("store-doc-{}", std::process::id()));
//! let store = ArtifactStore::open(&root).unwrap();
//! let fp = Fingerprint::of(b"campaign-level key material");
//! store.put(fp, &DistanceSample(vec![0.25, 0.5])).unwrap();
//! let back: DistanceSample = store.get(fp).unwrap().unwrap();
//! assert_eq!(back.0, vec![0.25, 0.5]);
//! # let _ = std::fs::remove_dir_all(&root);
//! ```

#![warn(missing_docs)]

pub mod artifact;
pub mod fingerprint;
pub mod store;
pub mod wire;

pub use artifact::{Artifact, ArtifactKind, DistanceSample};
pub use fingerprint::{Fingerprint, FingerprintHasher};
pub use store::{
    ActivitySnapshot, ArtifactStore, GcReport, PinGuard, StoreError, StoreStats, VerifyReport,
    DEFAULT_LRU_BUDGET, FORMAT_VERSION, FRAME_OVERHEAD, MAGIC, STORE_SCHEMA_VERSION,
};
pub use wire::{ByteReader, ByteWriter, WireError};
