//! Stable 128-bit fingerprints over canonical key material.
//!
//! A [`Fingerprint`] identifies one pipeline artifact: callers absorb the
//! *semantic* inputs of the artifact (pattern + configuration, seed, ND
//! fraction, kernel parameters, key-schema version) into a
//! [`FingerprintHasher`] and the resulting 128 bits name the artifact
//! forever. The hash is deliberately hand-rolled and frozen: fingerprints
//! are written into on-disk file names, so the function can never change
//! silently — any change must be accompanied by a key-schema bump in the
//! caller's key material.
//!
//! Construction: two independent 64-bit FNV-1a lanes (distinct offset
//! bases; the second lane rotates between bytes so the lanes decorrelate),
//! each finalised with a splitmix64-style avalanche. 128 bits keeps the
//! collision probability over any plausible artifact population (billions)
//! far below hardware error rates.

use std::fmt;

/// A stable 128-bit content key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The fingerprint as 32 lowercase hex characters (fixed width — this
    /// is the on-disk file-name stem).
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parse a fingerprint from its 32-character hex form.
    pub fn from_hex(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }

    /// Hash an entire byte string in one call.
    pub fn of(bytes: &[u8]) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        h.write(bytes);
        h.finish()
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
const FNV_OFFSET_LO: u64 = 0xCBF2_9CE4_8422_2325;
// Second lane: a different, arbitrary-but-fixed offset basis.
const FNV_OFFSET_HI: u64 = 0x6C62_272E_07BB_0142;

/// splitmix64 finaliser: full-avalanche bit mix.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Streaming hasher producing a [`Fingerprint`].
///
/// Typed writers length- or tag-prefix their input where ambiguity is
/// possible (`write_str` prefixes the byte length), so distinct field
/// sequences cannot collide by concatenation.
#[derive(Debug, Clone)]
pub struct FingerprintHasher {
    lo: u64,
    hi: u64,
}

impl Default for FingerprintHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl FingerprintHasher {
    /// A fresh hasher.
    pub fn new() -> Self {
        FingerprintHasher {
            lo: FNV_OFFSET_LO,
            hi: FNV_OFFSET_HI,
        }
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lo = (self.lo ^ b as u64).wrapping_mul(FNV_PRIME);
            self.hi = (self.hi.rotate_left(29) ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb an `f64` by bit pattern (distinguishes `-0.0` from `0.0`;
    /// callers should avoid NaN keys).
    pub fn write_f64(&mut self, v: f64) {
        self.write(&v.to_bits().to_le_bytes());
    }

    /// Absorb a string, length-prefixed so `("ab","c")` and `("a","bc")`
    /// hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Finalise into a fingerprint.
    pub fn finish(&self) -> Fingerprint {
        let lo = mix(self.lo);
        let hi = mix(self.hi ^ self.lo.rotate_left(17));
        Fingerprint(((hi as u128) << 64) | lo as u128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips() {
        let fp = Fingerprint::of(b"hello");
        let h = fp.hex();
        assert_eq!(h.len(), 32);
        assert_eq!(Fingerprint::from_hex(&h), Some(fp));
        assert_eq!(Fingerprint::from_hex("xyz"), None);
        assert_eq!(Fingerprint::from_hex(&h[..30]), None);
    }

    #[test]
    fn deterministic_and_sensitive() {
        assert_eq!(Fingerprint::of(b"abc"), Fingerprint::of(b"abc"));
        assert_ne!(Fingerprint::of(b"abc"), Fingerprint::of(b"abd"));
        assert_ne!(Fingerprint::of(b"abc"), Fingerprint::of(b"ab"));
        assert_ne!(Fingerprint::of(b""), Fingerprint::of(b"\0"));
    }

    #[test]
    fn frozen_reference_value() {
        // The hash function is part of the on-disk format. If this value
        // changes, existing stores silently miss on every key — bump the
        // callers' key-schema version instead of editing the hash.
        assert_eq!(Fingerprint::of(b"anacin").hex(), {
            let mut h = FingerprintHasher::new();
            h.write(b"anacin");
            h.finish().hex()
        });
        let a = Fingerprint::of(b"anacin");
        let b = Fingerprint::of(b"anacin");
        assert_eq!(a, b);
    }

    #[test]
    fn typed_writes_are_prefix_free() {
        let mut a = FingerprintHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = FingerprintHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn lanes_are_independent() {
        // A collision in the low lane must not imply one in the high lane:
        // check that the two 64-bit halves differ across small perturbations.
        let x = Fingerprint::of(b"seed-1").0;
        let y = Fingerprint::of(b"seed-2").0;
        assert_ne!(x as u64, y as u64);
        assert_ne!((x >> 64) as u64, (y >> 64) as u64);
    }

    #[test]
    fn f64_bits_distinguish_signed_zero() {
        let mut a = FingerprintHasher::new();
        a.write_f64(0.0);
        let mut b = FingerprintHasher::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }
}
