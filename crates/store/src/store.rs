//! The on-disk content-addressed store.
//!
//! ## Layout
//!
//! ```text
//! <root>/
//!   ab/cd/abcd…32-hex….trace      one artifact per file
//!   ab/cd/abcd…32-hex….gram
//! ```
//!
//! The first two shard levels are the leading four hex characters of the
//! fingerprint, keeping any single directory small even for millions of
//! artifacts. The extension encodes the [`ArtifactKind`], so one
//! fingerprint may coexist at several kinds (trace + graph of the same
//! run) without ambiguity.
//!
//! ## Frame
//!
//! Every file is framed:
//!
//! ```text
//! magic  b"ANST"        4 bytes
//! format u8             frame layout version (1)
//! schema u16 LE         store payload schema (STORE_SCHEMA_VERSION)
//! kind   u8             ArtifactKind discriminant
//! payload …             artifact wire encoding
//! checksum u64 LE       FNV-1a 64 over everything above
//! ```
//!
//! A wrong magic/format/kind or checksum mismatch is **corruption**
//! ([`StoreError::Corrupt`]); a schema mismatch is a clean **miss**
//! (old artifacts are invalidated, not errors). Publication is atomic:
//! write to a temp file in the same directory, fsync, rename.
//!
//! ## Concurrency
//!
//! All operations take `&self`; the store is `Send + Sync`. Writers
//! racing on the same key both publish identical bytes (content
//! addressing), so last-rename-wins is harmless. [`ArtifactStore::pin`]
//! guards a key against [`ArtifactStore::gc`] while a reader is between
//! `contains` and `get`.

use crate::artifact::{Artifact, ArtifactKind};
use crate::fingerprint::Fingerprint;
use crate::wire::WireError;
use anacin_obs::{Counter, MetricsRegistry};
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::SystemTime;

/// File magic: "ANacin STore".
pub const MAGIC: [u8; 4] = *b"ANST";
/// Frame layout version (header/footer shape, not payload shape).
pub const FORMAT_VERSION: u8 = 1;
/// Payload schema version. Bump when any artifact's wire layout changes;
/// every existing artifact then reads as a miss and is recomputed.
pub const STORE_SCHEMA_VERSION: u16 = 1;
/// Frame overhead: 8-byte header + 8-byte checksum footer.
pub const FRAME_OVERHEAD: usize = 16;

/// Default in-memory LRU budget (bytes).
pub const DEFAULT_LRU_BUDGET: usize = 64 << 20;

/// FNV-1a 64 over a byte slice — the frame checksum.
fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A store failure.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error.
    Io(io::Error),
    /// The artifact exists but its frame or checksum is damaged.
    Corrupt {
        /// Path of the damaged file.
        path: PathBuf,
        /// Human-readable cause ("checksum mismatch", "bad magic", …).
        reason: String,
    },
    /// The payload framed correctly but did not decode as its type.
    Decode(WireError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Corrupt { path, reason } => {
                write!(f, "corrupt artifact {}: {reason}", path.display())
            }
            StoreError::Decode(e) => write!(f, "artifact decode error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Decode(e) => Some(e),
            StoreError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> Self {
        StoreError::Decode(e)
    }
}

type Key = (u128, u8);

/// In-memory LRU front: decoded-frame payload bytes keyed by
/// (fingerprint, kind), evicted lowest-tick-first under a byte budget.
struct Lru {
    map: HashMap<Key, (Vec<u8>, u64)>,
    bytes: usize,
    budget: usize,
    tick: u64,
}

impl Lru {
    fn new(budget: usize) -> Self {
        Lru {
            map: HashMap::new(),
            bytes: 0,
            budget,
            tick: 0,
        }
    }

    fn get(&mut self, key: &Key) -> Option<Vec<u8>> {
        self.tick += 1;
        let tick = self.tick;
        let (bytes, stamp) = self.map.get_mut(key)?;
        *stamp = tick;
        Some(bytes.clone())
    }

    fn put(&mut self, key: Key, bytes: Vec<u8>) {
        if bytes.len() > self.budget {
            return; // would evict everything and still not fit
        }
        self.tick += 1;
        if let Some((old, _)) = self.map.insert(key, (bytes.clone(), self.tick)) {
            self.bytes -= old.len();
        }
        self.bytes += bytes.len();
        while self.bytes > self.budget {
            // Evict the least-recently-used entry (lowest tick).
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| *k)
                .expect("over budget implies non-empty");
            if victim == key {
                break; // never evict the entry just inserted
            }
            if let Some((old, _)) = self.map.remove(&victim) {
                self.bytes -= old.len();
            }
        }
    }

    fn remove(&mut self, key: &Key) {
        if let Some((old, _)) = self.map.remove(key) {
            self.bytes -= old.len();
        }
    }
}

/// Internal activity totals, mirrored into `crates/obs` counters when a
/// registry is attached.
#[derive(Default)]
struct Activity {
    hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
    corrupt: AtomicU64,
    lru_hits: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

/// obs counter handles, created once at [`ArtifactStore::attach_metrics`].
struct ObsCounters {
    hits: Counter,
    misses: Counter,
    puts: Counter,
    corrupt: Counter,
    lru_hits: Counter,
    bytes_read: Counter,
    bytes_written: Counter,
}

/// A point-in-time snapshot of store activity counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ActivitySnapshot {
    /// Disk (or LRU) gets that found the artifact.
    pub hits: u64,
    /// Gets that found nothing (including schema-invalidated artifacts).
    pub misses: u64,
    /// Artifacts published.
    pub puts: u64,
    /// Corrupt frames encountered.
    pub corrupt: u64,
    /// Hits served from the in-memory LRU without touching disk.
    pub lru_hits: u64,
    /// Frame bytes read from disk.
    pub bytes_read: u64,
    /// Frame bytes written to disk.
    pub bytes_written: u64,
}

/// On-disk usage summary from [`ArtifactStore::stats`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Total artifact files.
    pub files: u64,
    /// Total bytes across artifact files (frames included).
    pub bytes: u64,
    /// (kind, files, bytes) per artifact kind, in kind order.
    pub by_kind: Vec<(ArtifactKind, u64, u64)>,
}

/// Result of a [`ArtifactStore::verify`] walk.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Files whose frame and checksum verified.
    pub ok: u64,
    /// Artifacts written under a different (older/newer) schema; valid
    /// frames, but invisible to `get`.
    pub stale_schema: u64,
    /// Damaged files: (path, reason).
    pub corrupt: Vec<(PathBuf, String)>,
}

/// Result of a [`ArtifactStore::gc`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Files deleted.
    pub evicted_files: u64,
    /// Bytes reclaimed.
    pub evicted_bytes: u64,
    /// Files kept.
    pub kept_files: u64,
    /// Bytes still on disk after the pass.
    pub kept_bytes: u64,
    /// Files that were over-budget candidates but pinned by a live
    /// [`PinGuard`] and therefore kept.
    pub pinned_skipped: u64,
}

/// A content-addressed, versioned artifact store rooted at one directory.
pub struct ArtifactStore {
    root: PathBuf,
    lru: Mutex<Lru>,
    pins: Mutex<HashMap<Key, usize>>,
    activity: Activity,
    obs: Mutex<Option<ObsCounters>>,
    tmp_seq: AtomicU64,
}

impl fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArtifactStore")
            .field("root", &self.root)
            .finish_non_exhaustive()
    }
}

/// Keeps one (fingerprint, kind) safe from [`ArtifactStore::gc`] while
/// alive. Cloning the underlying refcount is not supported — take another
/// pin instead.
pub struct PinGuard<'a> {
    store: &'a ArtifactStore,
    key: Key,
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        let mut pins = self.store.pins.lock().expect("pin map poisoned");
        if let Some(n) = pins.get_mut(&self.key) {
            *n -= 1;
            if *n == 0 {
                pins.remove(&self.key);
            }
        }
    }
}

impl ArtifactStore {
    /// Open (creating if needed) a store rooted at `root`, with the
    /// default in-memory LRU budget.
    pub fn open(root: impl AsRef<Path>) -> Result<ArtifactStore, StoreError> {
        Self::open_with_lru_budget(root, DEFAULT_LRU_BUDGET)
    }

    /// Open with an explicit LRU byte budget (0 disables the memory front).
    pub fn open_with_lru_budget(
        root: impl AsRef<Path>,
        lru_budget: usize,
    ) -> Result<ArtifactStore, StoreError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(ArtifactStore {
            root,
            lru: Mutex::new(Lru::new(lru_budget)),
            pins: Mutex::new(HashMap::new()),
            activity: Activity::default(),
            obs: Mutex::new(None),
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The on-disk path an artifact would live at.
    pub fn path_of(&self, fp: Fingerprint, kind: ArtifactKind) -> PathBuf {
        let hex = fp.hex();
        self.root
            .join(&hex[0..2])
            .join(&hex[2..4])
            .join(format!("{hex}.{}", kind.ext()))
    }

    // ------------------------------------------------------------- metrics

    /// Mirror this store's activity counters into `m` under `store/…`
    /// names. Current totals are carried over, so attaching late loses
    /// nothing.
    pub fn attach_metrics(&self, m: &MetricsRegistry) {
        let c = ObsCounters {
            hits: m.counter("store/hits"),
            misses: m.counter("store/misses"),
            puts: m.counter("store/puts"),
            corrupt: m.counter("store/corrupt"),
            lru_hits: m.counter("store/lru_hits"),
            bytes_read: m.counter("store/bytes_read"),
            bytes_written: m.counter("store/bytes_written"),
        };
        let snap = self.activity();
        c.hits.add(snap.hits);
        c.misses.add(snap.misses);
        c.puts.add(snap.puts);
        c.corrupt.add(snap.corrupt);
        c.lru_hits.add(snap.lru_hits);
        c.bytes_read.add(snap.bytes_read);
        c.bytes_written.add(snap.bytes_written);
        *self.obs.lock().expect("obs slot poisoned") = Some(c);
    }

    /// Current activity totals.
    pub fn activity(&self) -> ActivitySnapshot {
        let a = &self.activity;
        ActivitySnapshot {
            hits: a.hits.load(Ordering::Relaxed),
            misses: a.misses.load(Ordering::Relaxed),
            puts: a.puts.load(Ordering::Relaxed),
            corrupt: a.corrupt.load(Ordering::Relaxed),
            lru_hits: a.lru_hits.load(Ordering::Relaxed),
            bytes_read: a.bytes_read.load(Ordering::Relaxed),
            bytes_written: a.bytes_written.load(Ordering::Relaxed),
        }
    }

    fn bump(&self, which: fn(&Activity) -> &AtomicU64, obs: fn(&ObsCounters) -> &Counter, n: u64) {
        which(&self.activity).fetch_add(n, Ordering::Relaxed);
        if let Some(c) = &*self.obs.lock().expect("obs slot poisoned") {
            obs(c).add(n);
        }
    }

    // ------------------------------------------------------------- put/get

    /// Publish an artifact under `fp`. Atomic: concurrent readers see
    /// either the previous state or the complete new file, never a tear.
    pub fn put<A: Artifact>(&self, fp: Fingerprint, value: &A) -> Result<(), StoreError> {
        self.put_bytes(fp, A::KIND, &value.to_wire())
    }

    /// Fetch and decode an artifact. `Ok(None)` means absent or written
    /// under a different schema version; [`StoreError::Corrupt`] means the
    /// file exists but is damaged.
    pub fn get<A: Artifact>(&self, fp: Fingerprint) -> Result<Option<A>, StoreError> {
        match self.get_bytes(fp, A::KIND)? {
            Some(payload) => Ok(Some(A::from_wire(&payload)?)),
            None => Ok(None),
        }
    }

    /// True when a valid-looking artifact file exists for the key (does
    /// not read or verify the payload).
    pub fn contains(&self, fp: Fingerprint, kind: ArtifactKind) -> bool {
        if self
            .lru
            .lock()
            .expect("lru poisoned")
            .map
            .contains_key(&(fp.0, kind as u8))
        {
            return true;
        }
        self.path_of(fp, kind).is_file()
    }

    /// Publish raw payload bytes under `(fp, kind)`.
    pub fn put_bytes(
        &self,
        fp: Fingerprint,
        kind: ArtifactKind,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        let mut frame = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
        frame.extend_from_slice(&MAGIC);
        frame.push(FORMAT_VERSION);
        frame.extend_from_slice(&STORE_SCHEMA_VERSION.to_le_bytes());
        frame.push(kind as u8);
        frame.extend_from_slice(payload);
        let sum = checksum(&frame);
        frame.extend_from_slice(&sum.to_le_bytes());

        let path = self.path_of(fp, kind);
        let dir = path.parent().expect("sharded path has a parent");
        fs::create_dir_all(dir)?;
        // Unique temp name per (process, call) so concurrent writers of
        // the same key never share a temp file; the final rename is atomic
        // and idempotent because content-addressed bytes are identical.
        let tmp = dir.join(format!(
            ".tmp-{}-{}-{}",
            fp.hex(),
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&frame)?;
        f.sync_all()?;
        drop(f);
        if let Err(e) = fs::rename(&tmp, &path) {
            let _ = fs::remove_file(&tmp);
            return Err(e.into());
        }
        // Best-effort directory durability; not all platforms support it.
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }

        self.bump(|a| &a.puts, |c| &c.puts, 1);
        self.bump(
            |a| &a.bytes_written,
            |c| &c.bytes_written,
            frame.len() as u64,
        );
        self.lru
            .lock()
            .expect("lru poisoned")
            .put((fp.0, kind as u8), payload.to_vec());
        Ok(())
    }

    /// Fetch raw payload bytes for `(fp, kind)`, trying the in-memory LRU
    /// before disk. See [`ArtifactStore::get`] for the result contract.
    pub fn get_bytes(
        &self,
        fp: Fingerprint,
        kind: ArtifactKind,
    ) -> Result<Option<Vec<u8>>, StoreError> {
        let key = (fp.0, kind as u8);
        if let Some(bytes) = self.lru.lock().expect("lru poisoned").get(&key) {
            self.bump(|a| &a.hits, |c| &c.hits, 1);
            self.bump(|a| &a.lru_hits, |c| &c.lru_hits, 1);
            return Ok(Some(bytes));
        }
        let path = self.path_of(fp, kind);
        let frame = match fs::read(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.bump(|a| &a.misses, |c| &c.misses, 1);
                return Ok(None);
            }
            Err(e) => return Err(e.into()),
        };
        self.bump(|a| &a.bytes_read, |c| &c.bytes_read, frame.len() as u64);
        match unframe(&path, &frame, Some(kind)) {
            Ok(Unframed::Payload(payload)) => {
                self.bump(|a| &a.hits, |c| &c.hits, 1);
                let payload = payload.to_vec();
                self.lru
                    .lock()
                    .expect("lru poisoned")
                    .put(key, payload.clone());
                Ok(Some(payload))
            }
            Ok(Unframed::StaleSchema) => {
                // Invalidated by a schema bump: a miss, not an error.
                self.bump(|a| &a.misses, |c| &c.misses, 1);
                Ok(None)
            }
            Err(e) => {
                self.bump(|a| &a.corrupt, |c| &c.corrupt, 1);
                self.lru.lock().expect("lru poisoned").remove(&key);
                Err(e)
            }
        }
    }

    /// Remove one artifact (used by self-healing after corruption).
    pub fn evict(&self, fp: Fingerprint, kind: ArtifactKind) -> Result<(), StoreError> {
        self.lru
            .lock()
            .expect("lru poisoned")
            .remove(&(fp.0, kind as u8));
        match fs::remove_file(self.path_of(fp, kind)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    // ---------------------------------------------------------------- pin

    /// Guard `(fp, kind)` against [`ArtifactStore::gc`] for the guard's
    /// lifetime. Reentrant: pins nest by refcount.
    pub fn pin(&self, fp: Fingerprint, kind: ArtifactKind) -> PinGuard<'_> {
        let key = (fp.0, kind as u8);
        *self
            .pins
            .lock()
            .expect("pin map poisoned")
            .entry(key)
            .or_insert(0) += 1;
        PinGuard { store: self, key }
    }

    fn is_pinned(&self, key: &Key) -> bool {
        self.pins
            .lock()
            .expect("pin map poisoned")
            .contains_key(key)
    }

    // ------------------------------------------------------------ walking

    fn walk(&self) -> Result<Vec<(PathBuf, Key, u64, SystemTime)>, StoreError> {
        let mut out = Vec::new();
        let shards = match fs::read_dir(&self.root) {
            Ok(d) => d,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e.into()),
        };
        for shard in shards {
            let shard = shard?;
            if !shard.file_type()?.is_dir() {
                continue;
            }
            for sub in fs::read_dir(shard.path())? {
                let sub = sub?;
                if !sub.file_type()?.is_dir() {
                    continue;
                }
                for entry in fs::read_dir(sub.path())? {
                    let entry = entry?;
                    let path = entry.path();
                    if !entry.file_type()?.is_file() {
                        continue;
                    }
                    let Some(key) = parse_artifact_name(&path) else {
                        continue; // temp files and strangers are not artifacts
                    };
                    let meta = entry.metadata()?;
                    let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                    out.push((path, key, meta.len(), mtime));
                }
            }
        }
        Ok(out)
    }

    /// Disk usage summary: file and byte totals, per artifact kind.
    pub fn stats(&self) -> Result<StoreStats, StoreError> {
        let mut stats = StoreStats::default();
        let mut per: HashMap<u8, (u64, u64)> = HashMap::new();
        for (_, (_, kind_byte), len, _) in self.walk()? {
            stats.files += 1;
            stats.bytes += len;
            let e = per.entry(kind_byte).or_insert((0, 0));
            e.0 += 1;
            e.1 += len;
        }
        for kind in ArtifactKind::ALL {
            if let Some(&(files, bytes)) = per.get(&(kind as u8)) {
                stats.by_kind.push((kind, files, bytes));
            }
        }
        Ok(stats)
    }

    /// Read and checksum every artifact, reporting damage without
    /// erroring out of the walk.
    pub fn verify(&self) -> Result<VerifyReport, StoreError> {
        let mut report = VerifyReport::default();
        for (path, (_, kind_byte), _, _) in self.walk()? {
            let frame = match fs::read(&path) {
                Ok(f) => f,
                Err(e) => {
                    report.corrupt.push((path, format!("unreadable: {e}")));
                    continue;
                }
            };
            let expect = ArtifactKind::from_u8(kind_byte);
            match unframe(&path, &frame, expect) {
                Ok(Unframed::Payload(_)) => report.ok += 1,
                Ok(Unframed::StaleSchema) => report.stale_schema += 1,
                Err(StoreError::Corrupt { path, reason }) => report.corrupt.push((path, reason)),
                Err(e) => return Err(e),
            }
        }
        Ok(report)
    }

    /// Delete oldest artifacts (by mtime) until on-disk usage is within
    /// `byte_budget`. Pinned keys are never deleted, even when the budget
    /// cannot be met without them.
    pub fn gc(&self, byte_budget: u64) -> Result<GcReport, StoreError> {
        let mut files = self.walk()?;
        let total: u64 = files.iter().map(|(_, _, len, _)| *len).sum();
        let mut report = GcReport {
            kept_files: files.len() as u64,
            kept_bytes: total,
            ..GcReport::default()
        };
        if total <= byte_budget {
            return Ok(report);
        }
        files.sort_by_key(|(_, _, _, mtime)| *mtime);
        let mut excess = total - byte_budget;
        for (path, key, len, _) in files {
            if excess == 0 {
                break;
            }
            if self.is_pinned(&key) {
                report.pinned_skipped += 1;
                continue;
            }
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
            self.lru.lock().expect("lru poisoned").remove(&key);
            report.evicted_files += 1;
            report.evicted_bytes += len;
            report.kept_files -= 1;
            report.kept_bytes -= len;
            excess = excess.saturating_sub(len);
        }
        Ok(report)
    }
}

enum Unframed<'a> {
    Payload(&'a [u8]),
    StaleSchema,
}

/// Validate a frame: magic, format, kind, checksum. `expect_kind` of
/// `None` accepts any known kind (verify walks mixed extensions).
fn unframe<'a>(
    path: &Path,
    frame: &'a [u8],
    expect_kind: Option<ArtifactKind>,
) -> Result<Unframed<'a>, StoreError> {
    let corrupt = |reason: &str| StoreError::Corrupt {
        path: path.to_path_buf(),
        reason: reason.to_string(),
    };
    if frame.len() < FRAME_OVERHEAD {
        return Err(corrupt("truncated frame"));
    }
    if frame[0..4] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    if frame[4] != FORMAT_VERSION {
        return Err(corrupt("unknown frame format"));
    }
    let (body, footer) = frame.split_at(frame.len() - 8);
    let stored = u64::from_le_bytes(footer.try_into().unwrap());
    if checksum(body) != stored {
        return Err(corrupt("checksum mismatch"));
    }
    let kind_byte = frame[7];
    match (ArtifactKind::from_u8(kind_byte), expect_kind) {
        (None, _) => return Err(corrupt("unknown artifact kind")),
        (Some(k), Some(want)) if k != want => return Err(corrupt("kind mismatch")),
        _ => {}
    }
    let schema = u16::from_le_bytes(frame[5..7].try_into().unwrap());
    if schema != STORE_SCHEMA_VERSION {
        return Ok(Unframed::StaleSchema);
    }
    Ok(Unframed::Payload(&body[8..]))
}

/// Parse `<32-hex>.<ext>` into a key; anything else is not an artifact.
fn parse_artifact_name(path: &Path) -> Option<Key> {
    let name = path.file_name()?.to_str()?;
    let (stem, ext) = name.split_once('.')?;
    let fp = Fingerprint::from_hex(stem)?;
    let kind = ArtifactKind::from_ext(ext)?;
    Some((fp.0, kind as u8))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::DistanceSample;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("anacin-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_round_trip_and_counters() {
        let root = tmp_root("roundtrip");
        let store = ArtifactStore::open(&root).unwrap();
        let fp = Fingerprint::of(b"run-0");
        let d = DistanceSample(vec![1.0, 2.5, -0.0]);
        assert_eq!(store.get::<DistanceSample>(fp).unwrap(), None);
        store.put(fp, &d).unwrap();
        assert!(store.contains(fp, ArtifactKind::Distances));
        let back: DistanceSample = store.get(fp).unwrap().unwrap();
        assert_eq!(back, d);
        let a = store.activity();
        assert_eq!((a.hits, a.misses, a.puts, a.corrupt), (1, 1, 1, 0));
        assert_eq!(a.lru_hits, 1, "second read should hit the memory front");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn disk_read_after_cold_open() {
        let root = tmp_root("cold");
        let fp = Fingerprint::of(b"run-1");
        let d = DistanceSample(vec![3.25]);
        {
            let store = ArtifactStore::open(&root).unwrap();
            store.put(fp, &d).unwrap();
        }
        let store = ArtifactStore::open(&root).unwrap();
        let back: DistanceSample = store.get(fp).unwrap().unwrap();
        assert_eq!(back, d);
        let a = store.activity();
        assert_eq!(a.lru_hits, 0);
        assert!(a.bytes_read > 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn sharded_layout_and_filename() {
        let root = tmp_root("layout");
        let store = ArtifactStore::open(&root).unwrap();
        let fp = Fingerprint::of(b"layout");
        store.put(fp, &DistanceSample(vec![1.0])).unwrap();
        let hex = fp.hex();
        let expect = root
            .join(&hex[0..2])
            .join(&hex[2..4])
            .join(format!("{hex}.dist"));
        assert!(expect.is_file(), "missing {}", expect.display());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn flipped_byte_is_corruption_not_garbage() {
        let root = tmp_root("corrupt");
        let store = ArtifactStore::open_with_lru_budget(&root, 0).unwrap();
        let fp = Fingerprint::of(b"victim");
        store.put(fp, &DistanceSample(vec![42.0])).unwrap();
        let path = store.path_of(fp, ArtifactKind::Distances);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let err = store.get::<DistanceSample>(fp).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        assert_eq!(store.activity().corrupt, 1);
        // Self-heal: evict then republish.
        store.evict(fp, ArtifactKind::Distances).unwrap();
        store.put(fp, &DistanceSample(vec![42.0])).unwrap();
        assert!(store.get::<DistanceSample>(fp).unwrap().is_some());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn schema_mismatch_is_a_miss() {
        let root = tmp_root("schema");
        let store = ArtifactStore::open_with_lru_budget(&root, 0).unwrap();
        let fp = Fingerprint::of(b"old-schema");
        store.put(fp, &DistanceSample(vec![7.0])).unwrap();
        // Rewrite the frame with a bumped schema and a fixed-up checksum.
        let path = store.path_of(fp, ArtifactKind::Distances);
        let mut frame = fs::read(&path).unwrap();
        let body_len = frame.len() - 8;
        frame[5..7].copy_from_slice(&(STORE_SCHEMA_VERSION + 1).to_le_bytes());
        let sum = checksum(&frame[..body_len]);
        frame[body_len..].copy_from_slice(&sum.to_le_bytes());
        fs::write(&path, &frame).unwrap();
        assert_eq!(store.get::<DistanceSample>(fp).unwrap(), None);
        let v = store.verify().unwrap();
        assert_eq!((v.ok, v.stale_schema, v.corrupt.len()), (0, 1, 0));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn verify_reports_ok_and_corrupt() {
        let root = tmp_root("verify");
        let store = ArtifactStore::open(&root).unwrap();
        let good = Fingerprint::of(b"good");
        let bad = Fingerprint::of(b"bad");
        store.put(good, &DistanceSample(vec![1.0])).unwrap();
        store.put(bad, &DistanceSample(vec![2.0])).unwrap();
        let path = store.path_of(bad, ArtifactKind::Distances);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let v = store.verify().unwrap();
        assert_eq!(v.ok, 1);
        assert_eq!(v.corrupt.len(), 1);
        assert!(v.corrupt[0].1.contains("checksum"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn stats_counts_files_and_kinds() {
        let root = tmp_root("stats");
        let store = ArtifactStore::open(&root).unwrap();
        store
            .put(Fingerprint::of(b"a"), &DistanceSample(vec![1.0]))
            .unwrap();
        store
            .put(Fingerprint::of(b"b"), &DistanceSample(vec![2.0, 3.0]))
            .unwrap();
        let s = store.stats().unwrap();
        assert_eq!(s.files, 2);
        assert!(s.bytes > 2 * FRAME_OVERHEAD as u64);
        assert_eq!(s.by_kind.len(), 1);
        assert_eq!(s.by_kind[0].0, ArtifactKind::Distances);
        assert_eq!(s.by_kind[0].1, 2);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn gc_respects_budget_and_pins() {
        let root = tmp_root("gc");
        let store = ArtifactStore::open(&root).unwrap();
        let mut fps = Vec::new();
        for i in 0..6u8 {
            let fp = Fingerprint::of(&[b'g', i]);
            store.put(fp, &DistanceSample(vec![i as f64; 64])).unwrap();
            fps.push(fp);
        }
        let total = store.stats().unwrap().bytes;
        let per_file = total / 6;
        // Pin one artifact and GC down to roughly two files' worth.
        let _pin = store.pin(fps[0], ArtifactKind::Distances);
        let report = store.gc(per_file * 2).unwrap();
        assert!(report.evicted_files >= 3, "{report:?}");
        assert!(
            store.contains(fps[0], ArtifactKind::Distances),
            "pinned artifact must survive GC"
        );
        assert!(report.kept_bytes <= per_file * 3, "{report:?}");
        // Under budget: a second pass is a no-op.
        let quiet = store.gc(total).unwrap();
        assert_eq!(quiet.evicted_files, 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn pin_refcounts_nest() {
        let root = tmp_root("pins");
        let store = ArtifactStore::open(&root).unwrap();
        let fp = Fingerprint::of(b"pinned");
        store.put(fp, &DistanceSample(vec![1.0])).unwrap();
        let key = (fp.0, ArtifactKind::Distances as u8);
        {
            let _a = store.pin(fp, ArtifactKind::Distances);
            {
                let _b = store.pin(fp, ArtifactKind::Distances);
                assert!(store.is_pinned(&key));
            }
            assert!(store.is_pinned(&key), "outer pin still live");
        }
        assert!(!store.is_pinned(&key));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn lru_evicts_oldest_under_byte_budget() {
        let root = tmp_root("lru");
        // Budget fits ~2 payloads of 256 bytes.
        let store = ArtifactStore::open_with_lru_budget(&root, 600).unwrap();
        let fps: Vec<Fingerprint> = (0..3u8).map(|i| Fingerprint::of(&[b'l', i])).collect();
        for &fp in &fps {
            store.put(fp, &DistanceSample(vec![1.0; 31])).unwrap(); // 256-byte payload
        }
        // fps[0] was inserted first and never touched since: it should be
        // the LRU victim, so reading it now must go to disk.
        let before = store.activity().lru_hits;
        let _: DistanceSample = store.get(fps[0]).unwrap().unwrap();
        assert_eq!(store.activity().lru_hits, before, "fps[0] must be evicted");
        // fps[2] is fresh: memory hit.
        let _: DistanceSample = store.get(fps[2]).unwrap().unwrap();
        assert_eq!(store.activity().lru_hits, before + 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn concurrent_put_get_is_safe() {
        let root = tmp_root("concurrent");
        let store = ArtifactStore::open(&root).unwrap();
        std::thread::scope(|s| {
            for t in 0..4u8 {
                let store = &store;
                s.spawn(move || {
                    for i in 0..25u8 {
                        let fp = Fingerprint::of(&[b'c', t, i]);
                        let d = DistanceSample(vec![t as f64, i as f64]);
                        store.put(fp, &d).unwrap();
                        let back: DistanceSample = store.get(fp).unwrap().unwrap();
                        assert_eq!(back, d);
                    }
                });
            }
        });
        assert_eq!(store.stats().unwrap().files, 100);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn racing_writers_on_one_key_converge() {
        let root = tmp_root("race");
        let store = ArtifactStore::open(&root).unwrap();
        let fp = Fingerprint::of(b"contended");
        let d = DistanceSample(vec![9.0; 16]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (store, d) = (&store, &d);
                s.spawn(move || {
                    for _ in 0..10 {
                        store.put(fp, d).unwrap();
                        let back: DistanceSample = store.get(fp).unwrap().unwrap();
                        assert_eq!(&back, d);
                    }
                });
            }
        });
        // No temp files left behind.
        let leftovers: Vec<_> = store
            .walk()
            .unwrap()
            .iter()
            .map(|(p, _, _, _)| p.clone())
            .collect();
        assert_eq!(leftovers.len(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn metrics_attach_mirrors_totals() {
        let root = tmp_root("metrics");
        let store = ArtifactStore::open(&root).unwrap();
        let fp = Fingerprint::of(b"m");
        store.put(fp, &DistanceSample(vec![1.0])).unwrap();
        let _: Option<DistanceSample> = store.get(fp).unwrap();
        let m = MetricsRegistry::new();
        store.attach_metrics(&m); // late attach carries totals over
        let _: Option<DistanceSample> = store.get(fp).unwrap();
        let r = m.report();
        assert_eq!(r.counter("store/puts"), Some(1));
        assert_eq!(r.counter("store/hits"), Some(2));
        assert!(r.counter("store/bytes_written").unwrap() > 0);
        let _ = fs::remove_dir_all(&root);
    }
}
