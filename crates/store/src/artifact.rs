//! Artifact kinds and the [`Artifact`] codec trait.
//!
//! Each pipeline product the store can hold — trace, event graph, WL
//! feature vector, Gram matrix, kernel-distance sample — is one
//! [`ArtifactKind`]. The kind byte is stamped into the store frame header
//! and doubles as the file extension, so a `get` with the wrong kind (or a
//! key collision across kinds) is detected before any payload decoding.
//!
//! Domain crates implement [`Artifact`] for their own types (the codec
//! lives next to the fields it encodes); `crates/store` itself only ships
//! the trait plus [`DistanceSample`], the one artifact that has no richer
//! owning type.

use crate::wire::{ByteReader, ByteWriter, WireError};

/// What kind of pipeline product an artifact payload holds.
///
/// The discriminant values are part of the on-disk format — never reuse
/// or renumber them; retire a kind by leaving its number unassigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum ArtifactKind {
    /// A per-run execution trace (`mpisim::Trace`).
    Trace = 1,
    /// A per-run event graph (`event_graph::EventGraph`).
    Graph = 2,
    /// Per-run WL feature vector for one kernel configuration.
    Features = 3,
    /// Campaign-level Gram matrix for one kernel configuration.
    Gram = 4,
    /// Campaign-level kernel-distance sample (upper-triangle distances).
    Distances = 5,
}

impl ArtifactKind {
    /// Every kind, in discriminant order.
    pub const ALL: [ArtifactKind; 5] = [
        ArtifactKind::Trace,
        ArtifactKind::Graph,
        ArtifactKind::Features,
        ArtifactKind::Gram,
        ArtifactKind::Distances,
    ];

    /// The on-disk file extension for this kind.
    pub fn ext(self) -> &'static str {
        match self {
            ArtifactKind::Trace => "trace",
            ArtifactKind::Graph => "graph",
            ArtifactKind::Features => "feat",
            ArtifactKind::Gram => "gram",
            ArtifactKind::Distances => "dist",
        }
    }

    /// Recover a kind from its frame-header byte.
    pub fn from_u8(b: u8) -> Option<ArtifactKind> {
        match b {
            1 => Some(ArtifactKind::Trace),
            2 => Some(ArtifactKind::Graph),
            3 => Some(ArtifactKind::Features),
            4 => Some(ArtifactKind::Gram),
            5 => Some(ArtifactKind::Distances),
            _ => None,
        }
    }

    /// Recover a kind from its file extension (used by `store verify`).
    pub fn from_ext(ext: &str) -> Option<ArtifactKind> {
        ArtifactKind::ALL.iter().copied().find(|k| k.ext() == ext)
    }
}

/// A value the store can persist: a binary codec plus a kind tag.
///
/// Implementations must be **bit-deterministic**: encoding equal values
/// must yield equal bytes (sort any hash-map iteration), and decode ∘
/// encode must be the identity down to float bit patterns — the warm/cold
/// differential tests in `tests/store.rs` rely on it.
pub trait Artifact: Sized {
    /// The kind tag stamped into this artifact's store frame.
    const KIND: ArtifactKind;

    /// Append the canonical encoding of `self` to `w`.
    fn encode_into(&self, w: &mut ByteWriter);

    /// Decode a value previously produced by [`Artifact::encode_into`].
    /// Implementations should *not* call `r.finish()` — the store frame
    /// does that once after the outermost decode, so artifacts compose.
    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, WireError>;

    /// Encode into a fresh byte buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(128);
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Decode from a complete payload, requiring full consumption.
    fn from_wire(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = ByteReader::new(bytes);
        let v = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

/// A campaign's kernel-distance sample: the upper-triangle pairwise
/// distances in row-major (i < j) order, exactly as
/// `KernelMatrix::distance_sample` produces them.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DistanceSample(pub Vec<f64>);

impl Artifact for DistanceSample {
    const KIND: ArtifactKind = ArtifactKind::Distances;

    fn encode_into(&self, w: &mut ByteWriter) {
        w.seq_len(self.0.len());
        for &d in &self.0 {
            w.f64(d);
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len(8)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(r.f64()?);
        }
        Ok(DistanceSample(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_bytes_round_trip_and_are_frozen() {
        for k in ArtifactKind::ALL {
            assert_eq!(ArtifactKind::from_u8(k as u8), Some(k));
            assert_eq!(ArtifactKind::from_ext(k.ext()), Some(k));
        }
        // Frozen discriminants: these are on-disk bytes.
        assert_eq!(ArtifactKind::Trace as u8, 1);
        assert_eq!(ArtifactKind::Graph as u8, 2);
        assert_eq!(ArtifactKind::Features as u8, 3);
        assert_eq!(ArtifactKind::Gram as u8, 4);
        assert_eq!(ArtifactKind::Distances as u8, 5);
        assert_eq!(ArtifactKind::from_u8(0), None);
        assert_eq!(ArtifactKind::from_u8(6), None);
        assert_eq!(ArtifactKind::from_ext("exe"), None);
    }

    #[test]
    fn distance_sample_round_trips_bit_exactly() {
        let d = DistanceSample(vec![0.0, -0.0, 1.5, f64::NAN, 1e-300]);
        let bytes = d.to_wire();
        let back = DistanceSample::from_wire(&bytes).unwrap();
        assert_eq!(back.0.len(), d.0.len());
        for (a, b) in back.0.iter().zip(&d.0) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn distance_sample_rejects_trailing_bytes() {
        let mut bytes = DistanceSample(vec![1.0]).to_wire();
        bytes.push(0);
        assert!(matches!(
            DistanceSample::from_wire(&bytes),
            Err(WireError::TrailingBytes(1))
        ));
    }
}
