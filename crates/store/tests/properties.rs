//! Property-based tests of the store's wire format, fingerprints and the
//! put/get path: anything written must read back bit-identical, under any
//! interleaving of primitive types and any payload.

use anacin_store::{
    Artifact, ArtifactKind, ArtifactStore, ByteReader, ByteWriter, DistanceSample, Fingerprint,
};
use proptest::prelude::*;

/// One wire primitive, for generating arbitrary interleavings.
#[derive(Debug, Clone)]
enum Prim {
    U8(u8),
    U16(u16),
    U32(u32),
    U64(u64),
    I32(i32),
    F64(f64),
    Bool(bool),
    Str(String),
}

fn short_string() -> impl Strategy<Value = String> {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789/;_";
    prop::collection::vec(0usize..ALPHABET.len(), 0..24)
        .prop_map(|ix| ix.iter().map(|&i| ALPHABET[i] as char).collect())
}

fn prim() -> impl Strategy<Value = Prim> {
    prop_oneof![
        (0u8..=u8::MAX).prop_map(Prim::U8),
        (0u16..=u16::MAX).prop_map(Prim::U16),
        (0u32..u32::MAX).prop_map(Prim::U32),
        (0u64..u64::MAX).prop_map(Prim::U64),
        (i32::MIN..i32::MAX).prop_map(Prim::I32),
        (-1e12f64..1e12).prop_map(Prim::F64),
        (0u8..2).prop_map(|b| Prim::Bool(b == 1)),
        short_string().prop_map(Prim::Str),
    ]
}

fn temp_store(tag: &str) -> (std::path::PathBuf, ArtifactStore) {
    let dir =
        std::env::temp_dir().join(format!("anacin_store_prop_{}_{}", std::process::id(), tag));
    std::fs::remove_dir_all(&dir).ok();
    let store = ArtifactStore::open(&dir).expect("open temp store");
    (dir, store)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of primitives reads back exactly as written, and the
    /// reader finishes with no bytes left over.
    #[test]
    fn wire_primitives_round_trip(prims in prop::collection::vec(prim(), 0..40)) {
        let mut w = ByteWriter::new();
        for p in &prims {
            match p {
                Prim::U8(v) => w.u8(*v),
                Prim::U16(v) => w.u16(*v),
                Prim::U32(v) => w.u32(*v),
                Prim::U64(v) => w.u64(*v),
                Prim::I32(v) => w.i32(*v),
                Prim::F64(v) => w.f64(*v),
                Prim::Bool(v) => w.bool(*v),
                Prim::Str(v) => w.str(v),
            }
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for p in &prims {
            match p {
                Prim::U8(v) => prop_assert_eq!(*v, r.u8().unwrap()),
                Prim::U16(v) => prop_assert_eq!(*v, r.u16().unwrap()),
                Prim::U32(v) => prop_assert_eq!(*v, r.u32().unwrap()),
                Prim::U64(v) => prop_assert_eq!(*v, r.u64().unwrap()),
                Prim::I32(v) => prop_assert_eq!(*v, r.i32().unwrap()),
                Prim::F64(v) => prop_assert_eq!(v.to_bits(), r.f64().unwrap().to_bits()),
                Prim::Bool(v) => prop_assert_eq!(*v, r.bool().unwrap()),
                Prim::Str(v) => prop_assert_eq!(v, &r.str().unwrap()),
            }
        }
        prop_assert!(r.finish().is_ok());
    }

    /// A distance sample survives the full encode → frame → disk → decode
    /// path bit-for-bit, through a fresh store handle (cold LRU).
    #[test]
    fn distance_sample_round_trips_through_the_store(
        values in prop::collection::vec(-1e9f64..1e9, 0..64),
        key in 0u64..u64::MAX,
    ) {
        let (dir, store) = temp_store("dist");
        let sample = DistanceSample(values);
        let mut h = anacin_store::FingerprintHasher::new();
        h.write_u64(key);
        let fp = h.finish();
        store.put(fp, &sample).unwrap();

        let reopened = ArtifactStore::open(&dir).unwrap();
        let back: DistanceSample = reopened.get(fp).unwrap().expect("stored sample");
        let want: Vec<u64> = sample.0.iter().map(|v| v.to_bits()).collect();
        let got: Vec<u64> = back.0.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(want, got);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Raw payloads round-trip for every artifact kind, and a fingerprint
    /// survives its hex rendering.
    #[test]
    fn raw_bytes_round_trip_for_every_kind(
        payload in prop::collection::vec(0u8..=u8::MAX, 0..512),
        key in 0u64..u64::MAX,
        kind_idx in 0usize..5,
    ) {
        let kind = [
            ArtifactKind::Trace,
            ArtifactKind::Graph,
            ArtifactKind::Features,
            ArtifactKind::Gram,
            ArtifactKind::Distances,
        ][kind_idx];
        let fp = Fingerprint::of(&key.to_le_bytes());
        prop_assert_eq!(Fingerprint::from_hex(&fp.hex()), Some(fp));

        let (dir, store) = temp_store("raw");
        store.put_bytes(fp, kind, &payload).unwrap();
        let back = store.get_bytes(fp, kind).unwrap().expect("stored payload");
        prop_assert_eq!(&payload, &back);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Truncating an encoded distance sample anywhere never panics: decode
    /// reports a wire error instead.
    #[test]
    fn truncated_frames_error_cleanly(
        values in prop::collection::vec(-1e9f64..1e9, 1..32),
        cut_frac in 0.0f64..1.0,
    ) {
        let sample = DistanceSample(values);
        let bytes = sample.to_wire();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(DistanceSample::from_wire(&bytes[..cut]).is_err());
        }
    }
}
