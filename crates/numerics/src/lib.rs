//! # anacin-numerics
//!
//! The numerical consequence of communication non-determinism, and its
//! mitigations — the phenomenon that motivates the paper ("in the Enzo
//! software package … different galactic halos were identified across
//! different runs due to the non-deterministic order of message
//! exchanges", §I).
//!
//! [`sum`] implements reductions with different order sensitivity;
//! [`experiment`] runs the message-race pattern under injected ND and
//! reduces each run's contributions in arrival order, demonstrating that:
//!
//! * a naive sequential accumulation is **irreproducible** across runs;
//! * compensated (Kahan) summation tightens the spread;
//! * canonicalising the order (sorted reduction) restores **bitwise**
//!   reproducibility — the "intelligent runtime selection of reduction
//!   algorithms" fix from the paper's reference \[4\].
//!
//! ```
//! use anacin_numerics::prelude::*;
//!
//! let report = run(&ReductionExperiment { procs: 12, runs: 12, ..Default::default() });
//! assert!(report.outcome(Reduction::Sequential).distinct > 1);
//! assert_eq!(report.outcome(Reduction::Sorted).distinct, 1);
//! ```

#![warn(missing_docs)]

pub mod drift;
pub mod experiment;
pub mod sum;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::drift::{
        run as run_drift, sweep_iterations as sweep_drift_iterations, DriftExperiment, DriftReport,
    };
    pub use crate::experiment::{
        contributions, run, ReductionExperiment, ReductionOutcome, ReductionReport,
    };
    pub use crate::sum::{
        kahan_sum, pairwise_sum, promote_sum, sequential_sum, sorted_sum, Reduction,
    };
}

pub use experiment::{run, ReductionExperiment, ReductionReport};
pub use sum::Reduction;
