//! The reduction-reproducibility experiment.
//!
//! Workers (ranks 1..n) each contribute one value; the root accumulates
//! them **in message arrival order** — the naive wildcard-receive loop
//! found in real codes. We run the execution many times under injected
//! non-determinism, extract the root's match order from each trace, and
//! reduce the same contributions in that order with several algorithms.
//! Order-sensitive reductions produce *different numerical results across
//! runs of the same program on the same inputs*, which is exactly how
//! Enzo produced different galactic halos (paper §I).

use crate::sum::Reduction;
use anacin_miniapps::{MiniAppConfig, Pattern};
use anacin_mpisim::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReductionExperiment {
    /// Number of ranks (rank 0 reduces, 1..n contribute).
    pub procs: u32,
    /// Injected non-determinism percentage.
    pub nd_percent: f64,
    /// Number of runs.
    pub runs: u32,
    /// Seed for both the contribution values and the run seeds.
    pub seed: u64,
    /// Exponent range of contributions: values are drawn log-uniform in
    /// `10^-range ..= 10^range`, signed. Wide ranges amplify cancellation
    /// and thus order sensitivity.
    pub magnitude_range: f64,
}

impl Default for ReductionExperiment {
    fn default() -> Self {
        ReductionExperiment {
            procs: 16,
            nd_percent: 100.0,
            runs: 20,
            seed: 0xF10A7,
            magnitude_range: 6.0,
        }
    }
}

/// Per-algorithm outcome over all runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReductionOutcome {
    /// Algorithm name.
    pub algorithm: String,
    /// The result of each run, in run order.
    pub results: Vec<f32>,
    /// Number of distinct results across runs.
    pub distinct: usize,
    /// max − min over the runs (the reproducibility gap).
    pub spread: f32,
}

/// The full experiment result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReductionReport {
    /// The contributions of ranks 1..n (rank order).
    pub contributions: Vec<f32>,
    /// One outcome per algorithm, in [`Reduction::ALL`] order.
    pub outcomes: Vec<ReductionOutcome>,
    /// Number of distinct match orders observed at the root.
    pub distinct_orders: usize,
}

impl ReductionReport {
    /// The outcome of one algorithm.
    pub fn outcome(&self, r: Reduction) -> &ReductionOutcome {
        self.outcomes
            .iter()
            .find(|o| o.algorithm == r.name())
            .expect("all algorithms present")
    }
}

/// Draw the contributions: signed, log-uniform magnitudes.
pub fn contributions(n: usize, seed: u64, magnitude_range: f64) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let exp = rng.gen_range(-magnitude_range..=magnitude_range);
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            (sign * 10f64.powf(exp)) as f32
        })
        .collect()
}

/// Run the experiment.
pub fn run(config: &ReductionExperiment) -> ReductionReport {
    assert!(config.procs >= 2, "need at least one contributor");
    let values = contributions(
        config.procs as usize - 1,
        config.seed,
        config.magnitude_range,
    );
    let program = Pattern::MessageRace.build(&MiniAppConfig::with_procs(config.procs));
    let mut orders: BTreeMap<Vec<u32>, u32> = BTreeMap::new();
    let mut per_alg: Vec<Vec<f32>> = vec![Vec::new(); Reduction::ALL.len()];
    for run in 0..config.runs {
        let sim = SimConfig::with_nd_percent(config.nd_percent, config.seed + 1 + run as u64);
        let trace = simulate(&program, &sim).expect("race completes");
        let order = trace.match_order(Rank(0));
        *orders
            .entry(order.iter().map(|r| r.0).collect())
            .or_insert(0) += 1;
        // Contributions arrive in match order; rank r's value is
        // values[r - 1].
        let arrived: Vec<f32> = order.iter().map(|r| values[r.index() - 1]).collect();
        for (i, alg) in Reduction::ALL.iter().enumerate() {
            per_alg[i].push(alg.apply(&arrived));
        }
    }
    let outcomes = Reduction::ALL
        .iter()
        .zip(per_alg)
        .map(|(alg, results)| {
            let mut bits: Vec<u32> = results.iter().map(|x| x.to_bits()).collect();
            bits.sort_unstable();
            bits.dedup();
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for &x in &results {
                lo = lo.min(x);
                hi = hi.max(x);
            }
            ReductionOutcome {
                algorithm: alg.name().to_string(),
                distinct: bits.len(),
                spread: if results.is_empty() { 0.0 } else { hi - lo },
                results,
            }
        })
        .collect();
    ReductionReport {
        contributions: values,
        outcomes,
        distinct_orders: orders.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ReductionExperiment {
        ReductionExperiment {
            procs: 10,
            runs: 15,
            ..Default::default()
        }
    }

    #[test]
    fn nondeterministic_arrival_changes_sequential_sums() {
        let report = run(&small());
        assert!(report.distinct_orders > 1, "need actual races");
        let seq = report.outcome(Reduction::Sequential);
        assert!(
            seq.distinct > 1,
            "sequential reduction should be irreproducible, got {:?}",
            seq.results
        );
        assert!(seq.spread > 0.0);
    }

    #[test]
    fn sorted_reduction_is_bitwise_reproducible() {
        let report = run(&small());
        let sorted = report.outcome(Reduction::Sorted);
        assert_eq!(sorted.distinct, 1, "{:?}", sorted.results);
        assert_eq!(sorted.spread, 0.0);
    }

    #[test]
    fn compensated_sums_tighten_the_spread() {
        let report = run(&small());
        let seq = report.outcome(Reduction::Sequential);
        let kahan = report.outcome(Reduction::Kahan);
        assert!(
            kahan.spread <= seq.spread,
            "kahan {} vs sequential {}",
            kahan.spread,
            seq.spread
        );
    }

    #[test]
    fn zero_nd_is_fully_reproducible() {
        let report = run(&ReductionExperiment {
            nd_percent: 0.0,
            ..small()
        });
        assert_eq!(report.distinct_orders, 1);
        for o in &report.outcomes {
            assert_eq!(o.distinct, 1, "{}", o.algorithm);
        }
    }

    #[test]
    fn experiment_is_seed_reproducible() {
        let a = run(&small());
        let b = run(&small());
        assert_eq!(a, b);
    }

    #[test]
    fn contributions_deterministic_and_in_range() {
        let a = contributions(8, 3, 4.0);
        let b = contributions(8, 3, 4.0);
        assert_eq!(a, b);
        for &x in &a {
            let m = x.abs() as f64;
            assert!((1e-4..=1e4).contains(&m), "{x}");
        }
        assert_ne!(contributions(8, 4, 4.0), a);
    }
}
