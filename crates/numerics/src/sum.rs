//! Summation algorithms with different sensitivity to operand order.
//!
//! Floating-point addition is not associative, so a reduction whose
//! operand order follows message *arrival* order inherits the execution's
//! communication non-determinism — the mechanism behind the paper's Enzo
//! example (different galactic halos across runs) and the reproducible-
//! reduction work it cites (Chapp et al., CLUSTER'15).

/// Left-to-right sequential sum in the given order — what a naive
/// `MPI_ANY_SOURCE` accumulation loop computes.
pub fn sequential_sum(values: &[f32]) -> f32 {
    values.iter().copied().fold(0.0f32, |acc, x| acc + x)
}

/// Kahan (compensated) summation: order-sensitive in principle, but the
/// compensation term absorbs most of the order-dependent roundoff.
pub fn kahan_sum(values: &[f32]) -> f32 {
    let mut sum = 0.0f32;
    let mut c = 0.0f32;
    for &x in values {
        let y = x - c;
        let t = sum + y;
        c = (t - sum) - y;
        sum = t;
    }
    sum
}

/// Pairwise (tree) summation over the given order: lower error than
/// sequential, still order-sensitive.
pub fn pairwise_sum(values: &[f32]) -> f32 {
    match values.len() {
        0 => 0.0,
        1 => values[0],
        n => {
            let (a, b) = values.split_at(n / 2);
            pairwise_sum(a) + pairwise_sum(b)
        }
    }
}

/// Order-*insensitive* sum: sort by total order first (the "intelligent
/// runtime selection" fix — canonicalise the reduction order), then sum
/// sequentially. Identical result for any input permutation.
pub fn sorted_sum(values: &[f32]) -> f32 {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    sequential_sum(&v)
}

/// Exact sum via f64 accumulation, rounded once at the end — a cheap
/// near-deterministic alternative when the dynamic range fits f64.
pub fn promote_sum(values: &[f32]) -> f32 {
    values.iter().map(|&x| x as f64).sum::<f64>() as f32
}

/// Reduction algorithms under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reduction {
    /// [`sequential_sum`].
    Sequential,
    /// [`kahan_sum`].
    Kahan,
    /// [`pairwise_sum`].
    Pairwise,
    /// [`sorted_sum`].
    Sorted,
    /// [`promote_sum`].
    Promoted,
}

impl Reduction {
    /// All algorithms, in presentation order.
    pub const ALL: [Reduction; 5] = [
        Reduction::Sequential,
        Reduction::Kahan,
        Reduction::Pairwise,
        Reduction::Sorted,
        Reduction::Promoted,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Reduction::Sequential => "sequential",
            Reduction::Kahan => "kahan",
            Reduction::Pairwise => "pairwise",
            Reduction::Sorted => "sorted",
            Reduction::Promoted => "promoted-f64",
        }
    }

    /// Apply the algorithm to `values` in the given order.
    pub fn apply(&self, values: &[f32]) -> f32 {
        match self {
            Reduction::Sequential => sequential_sum(values),
            Reduction::Kahan => kahan_sum(values),
            Reduction::Pairwise => pairwise_sum(values),
            Reduction::Sorted => sorted_sum(values),
            Reduction::Promoted => promote_sum(values),
        }
    }

    /// Whether the algorithm is order-invariant by construction.
    pub fn order_invariant(&self) -> bool {
        matches!(self, Reduction::Sorted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic cancellation triple: (1e8 + 1) - 1e8 vs 1e8 - 1e8 + 1.
    const TRIPLE: [f32; 3] = [1.0e8, 1.0, -1.0e8];

    #[test]
    fn sequential_sum_is_order_sensitive() {
        let a = sequential_sum(&TRIPLE); // (1e8 + 1) - 1e8 = 0 in f32
        let b = sequential_sum(&[1.0e8, -1.0e8, 1.0]); // 0 + 1 = 1
        assert_ne!(a, b);
        assert_eq!(b, 1.0);
    }

    #[test]
    fn sorted_sum_is_order_invariant() {
        let perms: [[f32; 3]; 3] = [
            [1.0e8, 1.0, -1.0e8],
            [1.0, 1.0e8, -1.0e8],
            [-1.0e8, 1.0e8, 1.0],
        ];
        let base = sorted_sum(&perms[0]);
        for p in &perms {
            assert_eq!(sorted_sum(p), base);
        }
    }

    #[test]
    fn kahan_recovers_small_addends() {
        // Sequentially adding 1.0 to 1e8 loses every addend (ulp(1e8) = 8
        // in f32); Kahan's compensation recovers them.
        let mut v = vec![1.0e8f32];
        v.extend(std::iter::repeat_n(1.0f32, 1024));
        assert_eq!(sequential_sum(&v), 1.0e8);
        assert_eq!(kahan_sum(&v), 1.0e8 + 1024.0);
    }

    #[test]
    fn promoted_sum_is_exact_here() {
        assert_eq!(promote_sum(&TRIPLE), 1.0);
    }

    #[test]
    fn pairwise_matches_exact_on_benign_input() {
        let v: Vec<f32> = (1..=64).map(|i| i as f32).collect();
        assert_eq!(pairwise_sum(&v), 64.0 * 65.0 / 2.0);
        assert_eq!(pairwise_sum(&[]), 0.0);
        assert_eq!(pairwise_sum(&[3.5]), 3.5);
    }

    #[test]
    fn enum_plumbing() {
        for r in Reduction::ALL {
            assert!(!r.name().is_empty());
            let _ = r.apply(&TRIPLE);
        }
        assert!(Reduction::Sorted.order_invariant());
        assert!(!Reduction::Sequential.order_invariant());
    }
}
