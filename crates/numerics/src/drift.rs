//! Iterative drift: how numerical irreproducibility *accumulates* over
//! iterations — the quantitative companion to the paper's Use Case 2
//! observation that "by increasing the number of iterations … they may
//! accumulate substantial differences in the numerical results and
//! ultimately different scientific findings" (§III-B2).
//!
//! Model: an iterative solver in which every iteration gathers partial results
//! in arrival order, reduces them sequentially in f32, and feeds the sum
//! into the next iteration's contributions (a contraction toward a fixed
//! point plus the gathered term). Run-to-run match-order differences
//! perturb every iteration, so the spread of the final state grows with
//! the iteration count.

use crate::experiment::contributions;
use crate::sum::sequential_sum;
use anacin_miniapps::{MiniAppConfig, Pattern};
use anacin_mpisim::prelude::*;
use serde::{Deserialize, Serialize};

/// Drift experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftExperiment {
    /// Ranks (rank 0 reduces).
    pub procs: u32,
    /// Iterations of the gather-reduce loop within one execution.
    pub iterations: u32,
    /// Injected ND percentage.
    pub nd_percent: f64,
    /// Number of runs.
    pub runs: u32,
    /// Base seed.
    pub seed: u64,
}

impl Default for DriftExperiment {
    fn default() -> Self {
        DriftExperiment {
            procs: 12,
            iterations: 4,
            nd_percent: 100.0,
            runs: 15,
            seed: 0xD81F7,
        }
    }
}

/// The result: final solver states per run, and their spread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftReport {
    /// Final state of each run.
    pub finals: Vec<f32>,
    /// max − min over runs.
    pub spread: f32,
    /// Number of distinct final states.
    pub distinct: usize,
}

/// Run the drift experiment at its configured iteration count.
pub fn run(config: &DriftExperiment) -> DriftReport {
    assert!(config.procs >= 2 && config.iterations >= 1);
    let app = MiniAppConfig::with_procs(config.procs).iterations(config.iterations);
    let program = Pattern::MessageRace.build(&app);
    let values = contributions(config.procs as usize - 1, config.seed, 4.0);
    let mut finals = Vec::with_capacity(config.runs as usize);
    for run_i in 0..config.runs {
        let sim = SimConfig::with_nd_percent(config.nd_percent, config.seed + 1 + run_i as u64);
        let trace = simulate(&program, &sim).expect("race completes");
        // The race pattern posts (procs-1) receives per iteration; chunk
        // the root's match order by iteration.
        let order = trace.match_order(Rank(0));
        let per_iter = config.procs as usize - 1;
        let mut state = 1.0f32;
        for chunk in order.chunks(per_iter) {
            let arrived: Vec<f32> = chunk
                .iter()
                .map(|r| values[r.index() - 1] * state)
                .collect();
            let gathered = sequential_sum(&arrived);
            // Contractive update keeps the state bounded while letting
            // order-dependent roundoff persist into the next iteration.
            state = 0.5 * state + 1e-3 * gathered + 1.0;
        }
        finals.push(state);
    }
    let mut bits: Vec<u32> = finals.iter().map(|x| x.to_bits()).collect();
    bits.sort_unstable();
    bits.dedup();
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for &x in &finals {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    DriftReport {
        spread: if finals.is_empty() { 0.0 } else { hi - lo },
        distinct: bits.len(),
        finals,
    }
}

/// Spread as a function of iteration count (the Fig-6 analogue for
/// numerics): returns `(iterations, spread)` pairs.
pub fn sweep_iterations(base: &DriftExperiment, iterations: &[u32]) -> Vec<(u32, f32)> {
    iterations
        .iter()
        .map(|&it| {
            let mut cfg = base.clone();
            cfg.iterations = it;
            (it, run(&cfg).spread)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_exists_under_nd() {
        let r = run(&DriftExperiment::default());
        assert!(r.distinct > 1, "finals: {:?}", r.finals);
        assert!(r.spread > 0.0);
        assert!(r.finals.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn no_drift_at_zero_nd() {
        let r = run(&DriftExperiment {
            nd_percent: 0.0,
            ..Default::default()
        });
        assert_eq!(r.distinct, 1);
        assert_eq!(r.spread, 0.0);
    }

    #[test]
    fn drift_accumulates_with_iterations() {
        // A single iteration's order-dependent roundoff can round away
        // entirely (the 1e-3 coupling is below one ulp of the state);
        // with more iterations perturbations compound and must become
        // visible, and never shrink below the single-iteration level.
        let sweep = sweep_iterations(&DriftExperiment::default(), &[1, 8]);
        let (one, eight) = (sweep[0].1, sweep[1].1);
        assert!(eight > 0.0, "8 iterations must drift");
        assert!(
            eight >= one,
            "drift shrank with iterations: 1 iter {one}, 8 iters {eight}"
        );
    }

    #[test]
    fn reproducible_given_seed() {
        let a = run(&DriftExperiment::default());
        let b = run(&DriftExperiment::default());
        assert_eq!(a, b);
    }
}
