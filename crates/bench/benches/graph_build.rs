//! Event-graph construction throughput (trace → graph), plus Lamport
//! clock computation and logical-time slicing.

use anacin_event_graph::{lamport, slice, EventGraph};
use anacin_miniapps::{MiniAppConfig, Pattern};
use anacin_mpisim::{simulate, SimConfig, Trace};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn make_trace(procs: u32) -> Trace {
    let program = Pattern::Amg2013.build(&MiniAppConfig::with_procs(procs).iterations(2));
    simulate(&program, &SimConfig::with_nd_percent(100.0, 1)).unwrap()
}

fn graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_build");
    for procs in [8u32, 16, 32] {
        let trace = make_trace(procs);
        group.throughput(Throughput::Elements(trace.total_events() as u64));
        group.bench_with_input(BenchmarkId::new("from_trace", procs), &trace, |b, t| {
            b.iter(|| EventGraph::from_trace(t));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("graph_algo");
    let trace = make_trace(16);
    let graph = EventGraph::from_trace(&trace);
    group.bench_function("lamport_times", |b| {
        b.iter(|| lamport::lamport_times(&graph))
    });
    group.bench_function("slice_into_16", |b| {
        b.iter(|| slice::slice_into(&graph, 16))
    });
    group.finish();
}

criterion_group!(benches, graph_build);
criterion_main!(benches);
