//! Kernel evaluation cost: WL depth sweep, kernel comparison, and
//! parallel Gram-matrix scaling over worker threads.

use anacin_event_graph::{EventGraph, LabelPolicy};
use anacin_kernels::prelude::*;
use anacin_miniapps::{MiniAppConfig, Pattern};
use anacin_mpisim::{simulate, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn graphs(count: u64, procs: u32) -> Vec<EventGraph> {
    let program = Pattern::Amg2013.build(&MiniAppConfig::with_procs(procs));
    (0..count)
        .map(|seed| {
            let t = simulate(&program, &SimConfig::with_nd_percent(100.0, seed)).unwrap();
            EventGraph::from_trace(&t)
        })
        .collect()
}

fn kernel_wl(c: &mut Criterion) {
    let gs = graphs(2, 16);
    let mut group = c.benchmark_group("kernel_wl_depth");
    for h in [0u32, 1, 2, 3, 5] {
        let k = WlKernel::with_iterations(h);
        group.bench_with_input(BenchmarkId::from_parameter(h), &k, |b, k| {
            b.iter(|| k.value(&gs[0], &gs[1]));
        });
    }
    group.finish();
}

fn kernel_comparison(c: &mut Criterion) {
    let gs = graphs(2, 16);
    let mut group = c.benchmark_group("kernel_comparison");
    let kernels: Vec<(&str, Box<dyn GraphKernel>)> = vec![
        ("wl_h3", Box::new(WlKernel::default())),
        (
            "vertex_hist",
            Box::new(VertexHistogramKernel {
                policy: LabelPolicy::TypeAndPeer,
            }),
        ),
        (
            "edge_hist",
            Box::new(EdgeHistogramKernel {
                policy: LabelPolicy::TypeAndPeer,
            }),
        ),
        ("shortest_path_d4", Box::new(ShortestPathKernel::default())),
        ("graphlet", Box::new(GraphletKernel::default())),
    ];
    for (name, k) in &kernels {
        group.bench_function(*name, |b| b.iter(|| k.value(&gs[0], &gs[1])));
    }
    group.finish();
}

fn gram_matrix_scaling(c: &mut Criterion) {
    let gs = graphs(12, 8);
    let k = WlKernel::default();
    let mut group = c.benchmark_group("gram_matrix_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| gram_matrix(&k, &gs, t));
        });
    }
    group.finish();
}

criterion_group!(benches, kernel_wl, kernel_comparison, gram_matrix_scaling);
criterion_main!(benches);
