//! End-to-end pipeline cost: the per-figure campaign loops
//! (simulate → graph → kernel matrix) and the root-cause analysis.

use anacin_core::prelude::*;
use anacin_miniapps::Pattern;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn campaigns(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    for (pattern, procs) in [
        (Pattern::MessageRace, 8u32),
        (Pattern::Amg2013, 8),
        (Pattern::UnstructuredMesh, 8),
    ] {
        let cfg = CampaignConfig::new(pattern, procs).runs(10);
        group.bench_with_input(
            BenchmarkId::new("runs10", pattern.name()),
            &cfg,
            |b, cfg| {
                b.iter(|| run_campaign(cfg).unwrap().mean_distance());
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("root_cause");
    group.sample_size(10);
    let cfg = CampaignConfig::new(Pattern::Amg2013, 8).runs(10);
    let result = run_campaign(&cfg).unwrap();
    group.bench_function("analyze_16_slices", |b| {
        b.iter(|| analyze(&result, &RootCauseConfig::default()));
    });
    group.finish();
}

criterion_group!(benches, campaigns);
criterion_main!(benches);
