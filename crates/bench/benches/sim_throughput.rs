//! DES engine throughput: simulated events per second as a function of
//! rank count and communication pattern.

use anacin_miniapps::{MiniAppConfig, Pattern};
use anacin_mpisim::{simulate, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    for pattern in [
        Pattern::MessageRace,
        Pattern::Amg2013,
        Pattern::UnstructuredMesh,
    ] {
        for procs in [8u32, 16, 32] {
            let program = pattern.build(&MiniAppConfig::with_procs(procs));
            let events = {
                let t = simulate(&program, &SimConfig::with_nd_percent(100.0, 1)).unwrap();
                t.total_events() as u64
            };
            group.throughput(Throughput::Elements(events));
            group.bench_with_input(BenchmarkId::new(pattern.name(), procs), &program, |b, p| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    simulate(p, &SimConfig::with_nd_percent(100.0, seed)).unwrap()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, sim_throughput);
criterion_main!(benches);
