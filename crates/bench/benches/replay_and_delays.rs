//! Record/replay overhead and the delay-distribution ablation
//! (DESIGN.md design choices #3/#4).
//!
//! * `replay_overhead` — cost of a replayed run vs a free run: replay adds
//!   a per-receive constraint check, so the overhead should be small.
//! * `delay_distribution` — simulation cost under exponential, uniform and
//!   Pareto congestion delays; the companion shape facts (Figure-7
//!   monotonicity is robust to the distribution) are asserted in the
//!   integration tests.

use anacin_miniapps::{MiniAppConfig, Pattern};
use anacin_mpisim::network::{DelayDistribution, NetworkConfig};
use anacin_mpisim::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn replay_overhead(c: &mut Criterion) {
    let program = Pattern::Amg2013.build(&MiniAppConfig::with_procs(16));
    let sim = SimConfig::with_nd_percent(100.0, 1);
    let recorded = simulate(&program, &sim).unwrap();
    let record = MatchRecord::from_trace(&recorded);
    let mut group = c.benchmark_group("replay_overhead");
    group.bench_function("free_run", |b| {
        b.iter(|| simulate(&program, &sim).unwrap());
    });
    group.bench_function("replayed_run", |b| {
        b.iter(|| simulate_replay(&program, &sim, &record).unwrap());
    });
    group.finish();
}

fn delay_distribution(c: &mut Criterion) {
    let program = Pattern::UnstructuredMesh.build(&MiniAppConfig::with_procs(16).iterations(2));
    let mut group = c.benchmark_group("delay_distribution");
    let dists = [
        (
            "exponential",
            DelayDistribution::Exponential { mean_ns: 100.0 },
        ),
        (
            "uniform",
            DelayDistribution::Uniform {
                lo_ns: 0.0,
                hi_ns: 200.0,
            },
        ),
        (
            "pareto",
            DelayDistribution::Pareto {
                xm_ns: 50.0,
                alpha: 2.0,
            },
        ),
    ];
    for (name, dist) in dists {
        let cfg = SimConfig {
            network: NetworkConfig::with_nd_percent(100.0).delay(dist),
            seed: 0,
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                simulate(
                    &program,
                    &SimConfig {
                        network: cfg.network.clone(),
                        seed,
                    },
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, replay_overhead, delay_distribution);
criterion_main!(benches);
