//! Ablation: which kernels can actually *see* communication
//! non-determinism?
//!
//! DESIGN.md design-choice #1: ANACIN-X measures ND with the WL kernel
//! rather than cheap histogram kernels. This bench quantifies why, by
//! measuring the mean pairwise distance each kernel reports over the same
//! sample of 100%-ND runs (higher = more discriminating), alongside its
//! cost. The companion correctness fact — vertex histograms report ~0 on
//! pure match reorderings — is asserted in the unit tests of
//! `anacin-kernels`; here we report the measured separation as bench
//! output so the trade-off (cost vs signal) is visible in one place.

use anacin_event_graph::{EventGraph, LabelPolicy};
use anacin_kernels::prelude::*;
use anacin_miniapps::{MiniAppConfig, Pattern};
use anacin_mpisim::{simulate, SimConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn race_graphs(count: u64) -> Vec<EventGraph> {
    let program = Pattern::MessageRace.build(&MiniAppConfig::with_procs(12));
    (0..count)
        .map(|seed| {
            let t = simulate(&program, &SimConfig::with_nd_percent(100.0, seed)).unwrap();
            EventGraph::from_trace(&t)
        })
        .collect()
}

fn ablation(c: &mut Criterion) {
    let gs = race_graphs(10);
    let kernels: Vec<(&str, Box<dyn GraphKernel>)> = vec![
        ("wl_h3_peer", Box::new(WlKernel::default())),
        (
            "wl_h3_typeonly",
            Box::new(WlKernel {
                iterations: 3,
                policy: LabelPolicy::EventType,
                edge_sensitive: false,
            }),
        ),
        (
            "vertex_hist_peer",
            Box::new(VertexHistogramKernel {
                policy: LabelPolicy::TypeAndPeer,
            }),
        ),
        (
            "edge_hist_peer",
            Box::new(EdgeHistogramKernel {
                policy: LabelPolicy::TypeAndPeer,
            }),
        ),
        ("graphlet", Box::new(GraphletKernel::default())),
    ];
    // Report the ND signal each kernel sees (stdout, once).
    println!("\nablation: mean pairwise distance over 10 runs of a 12-rank race @100% ND");
    for (name, k) in &kernels {
        let m = gram_matrix(k.as_ref(), &gs, 4);
        println!("  {name:>18}: {:.4}", m.mean_pairwise_distance());
    }
    let mut group = c.benchmark_group("ablation_kernel_cost");
    group.sample_size(10);
    for (name, k) in &kernels {
        group.bench_function(*name, |b| {
            b.iter(|| gram_matrix(k.as_ref(), &gs, 4).mean_pairwise_distance())
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
