//! Pipeline baseline: mean-of-N per-stage wall-times for every mini-app
//! pattern (the paper's three plus the collectives and stencil2d
//! extensions), derived from the observability layer's span timers rather
//! than a separate harness. Each pattern runs once under the barrier
//! kernel schedule (the per-stage `features_ms`/`gram_ms` split) and once
//! under the default pipelined schedule (`features_pipelined_ms` /
//! `gram_pipelined_ms` / `kernel_speedup`), plus a tracer-attached pass
//! for `trace_overhead_pct` and a cold/warm artifact-store pass.
//! `anacin bench baseline` writes the report as `BENCH_baseline.json`; CI
//! uploads it so perf regressions across the simulate/graph/features/gram
//! stages are visible per commit.

use anacin_core::prelude::*;
use anacin_kernels::prelude::*;
use anacin_miniapps::Pattern;
use anacin_obs::{MetricsRegistry, Tracer};
use anacin_store::ArtifactStore;
use serde::Serialize;
use std::time::Instant;

/// Untraced campaigns faster than this are noise-dominated at
/// wall-clock granularity; below it `trace_overhead_pct` is reported as
/// `null` rather than as a meaningless (often negative) percentage.
pub const TRACE_OVERHEAD_FLOOR_MS: f64 = 5.0;

/// Overhead percentages come from at least this many timing samples
/// (medians, not means — a single scheduler hiccup must not skew them).
pub const MIN_OVERHEAD_SAMPLES: u32 = 5;

/// What to measure: campaign shape and repetition count.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Simulated process count (the paper's evaluation uses 32).
    pub procs: u32,
    /// Runs per campaign (one campaign = one sample).
    pub runs: u32,
    /// Campaigns per pattern; reported times are the mean over these.
    pub samples: u32,
    /// Seed of the first run in every campaign.
    pub base_seed: u64,
    /// Run counts the gram-at-scale tier measures the dot schedules at
    /// (default `[64, 256]`).
    pub gram_scale_runs: Vec<usize>,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            procs: 32,
            runs: 10,
            samples: 3,
            base_seed: 1,
            gram_scale_runs: vec![64, 256],
        }
    }
}

/// Mean per-stage wall-times for one pattern, in milliseconds.
#[derive(Debug, Clone, Serialize)]
pub struct StageTimings {
    /// The mini-app pattern measured.
    pub pattern: String,
    /// Campaigns averaged over.
    pub samples: u32,
    /// Mean wall-time of the parallel simulation stage.
    pub simulate_ms: f64,
    /// Mean wall-time of event-graph construction.
    pub graph_ms: f64,
    /// Mean wall-time of feature extraction (barrier schedule).
    pub features_ms: f64,
    /// Mean wall-time of the Gram-matrix dot products (barrier schedule).
    pub gram_ms: f64,
    /// Mean wall-time of the fused pipeline until the last feature vector
    /// completed (dot products already running underneath).
    pub features_pipelined_ms: f64,
    /// Mean wall-time of the fused pipeline's exposed dot-product tail
    /// after the last feature completed.
    pub gram_pipelined_ms: f64,
    /// `(features_ms + gram_ms) / (features_pipelined_ms +
    /// gram_pipelined_ms)` — how much faster the fused kernel stage is
    /// than the barrier schedule.
    pub kernel_speedup: f64,
    /// Mean end-to-end campaign wall-time (default pipelined schedule).
    pub total_ms: f64,
    /// Relative cost of running the same campaigns with a tracer
    /// attached: `(median traced − median untraced) / median untraced ×
    /// 100` over at least [`MIN_OVERHEAD_SAMPLES`] timings. `None`
    /// (serialised `null`) when the untraced median is under
    /// [`TRACE_OVERHEAD_FLOOR_MS`] — percentages of a noise-dominated
    /// baseline are meaningless.
    pub trace_overhead_pct: Option<f64>,
    /// Simulator events executed across all samples.
    pub events: u64,
    /// Kernel dot products computed across all samples.
    pub dot_products: u64,
    /// Mean wall-time of the campaign run against an empty artifact store
    /// (every trace/graph/feature/Gram artifact is computed and published).
    pub store_cold_ms: f64,
    /// Mean wall-time of the identical campaign re-run against the now
    /// populated store (every artifact served from the store).
    pub store_warm_ms: f64,
    /// `store_cold_ms / store_warm_ms` — how much faster a fully warm
    /// incremental campaign is than a cold one.
    pub store_speedup: f64,
}

/// Submit→result latency through the campaign service socket
/// (`anacin serve`): the same campaign submitted twice to a fresh
/// daemon, once against an empty store (cold) and once fully warm. The
/// CLI fills this row via `anacin_serve::bench::measure_serve_latency`;
/// `run_baseline` itself leaves it `None` so this crate stays free of a
/// service dependency.
#[derive(Debug, Clone, Serialize)]
pub struct ServeRow {
    /// Which pattern was submitted.
    pub pattern: String,
    /// First submission: every artifact computed and published.
    pub serve_cold_ms: f64,
    /// Second submission of the identical campaign: fully warm.
    pub serve_warm_ms: f64,
    /// `serve_cold_ms / serve_warm_ms`.
    pub serve_speedup: f64,
}

/// Gram-schedule timings at one run count of the gram-at-scale tier:
/// the same synthetic amg2013 feature set pushed through every dot
/// schedule, single-threaded so the ratios measure the schedules, not
/// the thread pool. `exact_ms` is the reference full recompute with the
/// scalar merge-join dot; `blocked_ms` and `append_ms` are bit-identical
/// alternatives, `landmark_ms` is the opt-in approximation.
#[derive(Debug, Clone, Serialize)]
pub struct GramScaleRow {
    /// Feature vectors (runs) in the Gram matrix.
    pub runs: usize,
    /// Full recompute, scalar merge-join dot (the pre-existing path).
    pub exact_ms: f64,
    /// Full recompute, blocked/galloping dot (bit-identical to exact).
    pub blocked_ms: f64,
    /// One `gram_append` step: growing the stored `runs−1` matrix by
    /// one run (`runs` new dots instead of `runs·(runs−1)/2`).
    pub append_ms: f64,
    /// Nyström landmark approximation with `landmark_k` landmarks.
    pub landmark_ms: f64,
    /// Landmarks used by the approximation (⌈√runs⌉).
    pub landmark_k: usize,
    /// Frobenius error bound the approximation reported.
    pub landmark_error_bound: f64,
    /// `exact_ms / blocked_ms`.
    pub blocked_speedup: f64,
    /// `exact_ms / append_ms`.
    pub append_speedup: f64,
}

/// The gram-at-scale tier: WL features of a real amg2013 campaign held
/// fixed (cycled and salted up to the largest run count) while the
/// dot-product schedules race on identical inputs, plus the WL
/// relabelling lane-width A/B.
#[derive(Debug, Clone, Serialize)]
pub struct GramScaleReport {
    /// Pattern the source features came from.
    pub pattern: String,
    /// Distinct real feature vectors the synthetic runs cycle over.
    pub source_runs: usize,
    /// Median wall-time of WL feature extraction over the source graphs
    /// with 4 interleaved FNV lanes.
    pub wl_lanes4_ms: f64,
    /// The same extraction with 8 interleaved lanes (the shipped width;
    /// labels are bit-identical at any width).
    pub wl_lanes8_ms: f64,
    /// One row per measured run count.
    pub rows: Vec<GramScaleRow>,
}

/// The full baseline: one row per paper pattern.
#[derive(Debug, Clone, Serialize)]
pub struct BaselineReport {
    /// Simulated process count.
    pub procs: u32,
    /// Runs per campaign.
    pub runs: u32,
    /// Campaigns per pattern.
    pub samples: u32,
    /// Per-pattern stage timings.
    pub patterns: Vec<StageTimings>,
    /// Service-path latency (filled by the CLI, absent in library runs).
    pub serve: Option<ServeRow>,
    /// Gram-at-scale tier (fixed features, growing run counts).
    pub gram_scale: Option<GramScaleReport>,
}

impl BaselineReport {
    /// Human-readable stage table.
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "baseline: procs={} runs={} samples={}\n\
             {:<16} {:>12} {:>10} {:>12} {:>10} {:>9} {:>9} {:>8} {:>10} {:>10} {:>9} {:>9} {:>8}\n",
            self.procs,
            self.runs,
            self.samples,
            "pattern",
            "simulate_ms",
            "graph_ms",
            "features_ms",
            "gram_ms",
            "pipe_f_ms",
            "pipe_g_ms",
            "kernel_x",
            "total_ms",
            "trace_ovh%",
            "cold_ms",
            "warm_ms",
            "store_x"
        );
        for r in &self.patterns {
            let ovh = match r.trace_overhead_pct {
                Some(v) => format!("{v:.1}"),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "{:<16} {:>12.3} {:>10.3} {:>12.3} {:>10.3} {:>9.3} {:>9.3} {:>8.2} {:>10.3} {:>10} {:>9.3} {:>9.3} {:>8.1}\n",
                r.pattern,
                r.simulate_ms,
                r.graph_ms,
                r.features_ms,
                r.gram_ms,
                r.features_pipelined_ms,
                r.gram_pipelined_ms,
                r.kernel_speedup,
                r.total_ms,
                ovh,
                r.store_cold_ms,
                r.store_warm_ms,
                r.store_speedup
            ));
        }
        if let Some(s) = &self.serve {
            out.push_str(&format!(
                "serve ({}): cold={:.3} ms, warm={:.3} ms, speedup={:.1}x (submit→result through the socket)\n",
                s.pattern, s.serve_cold_ms, s.serve_warm_ms, s.serve_speedup
            ));
        }
        if let Some(g) = &self.gram_scale {
            out.push_str(&format!(
                "gram_scale ({}, {} source vector(s)): wl_lanes4={:.3} ms, wl_lanes8={:.3} ms\n",
                g.pattern, g.source_runs, g.wl_lanes4_ms, g.wl_lanes8_ms
            ));
            for r in &g.rows {
                out.push_str(&format!(
                    "  R={:<4} exact={:.3} ms  blocked={:.3} ms ({:.1}x)  \
                     append={:.3} ms ({:.1}x)  landmark(k={})={:.3} ms bound={:.3}\n",
                    r.runs,
                    r.exact_ms,
                    r.blocked_ms,
                    r.blocked_speedup,
                    r.append_ms,
                    r.append_speedup,
                    r.landmark_k,
                    r.landmark_ms,
                    r.landmark_error_bound
                ));
            }
        }
        out
    }
}

/// Median of wall-time samples (NaN-free by construction).
fn median(mut xs: Vec<f64>) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Median wall-time of `reps` invocations of `f`, in milliseconds.
fn time_median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut ts = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        f();
        ts.push(t.elapsed().as_nanos() as f64 / 1e6);
    }
    median(ts)
}

/// The gram-at-scale tier: extract WL features from one real amg2013
/// campaign, cycle them (salted with one unique high-id feature per
/// replica, so every synthetic run is distinct) up to the largest run
/// count, and race the dot schedules on the identical feature set.
/// Everything times single-threaded medians of 3 so the ratios compare
/// schedules, not thread pools.
pub fn run_gram_scale(cfg: &BaselineConfig) -> GramScaleReport {
    let source_runs = 10u32;
    let ccfg = CampaignConfig::new(Pattern::Amg2013, cfg.procs)
        .runs(source_runs)
        .base_seed(cfg.base_seed);
    let result = run_campaign(&ccfg).expect("gram-scale source campaign");
    let kernel = WlKernel::default();
    let wl_lanes4_ms = time_median_ms(3, || {
        for g in &result.graphs {
            std::hint::black_box(kernel.features_with_lanes(g, 4));
        }
    });
    let wl_lanes8_ms = time_median_ms(3, || {
        for g in &result.graphs {
            std::hint::black_box(kernel.features_with_lanes(g, 8));
        }
    });
    let source: Vec<SparseFeatures> = result.graphs.iter().map(|g| kernel.features(g)).collect();
    let max_runs = cfg.gram_scale_runs.iter().copied().max().unwrap_or(0);
    let feats: Vec<SparseFeatures> = (0..max_runs)
        .map(|i| {
            let mut pairs: Vec<(u64, f64)> = source[i % source.len()].iter().collect();
            pairs.push((0xFFFF_0000_0000_0000 + i as u64, 1.0 + i as f64));
            SparseFeatures::from_pairs(pairs)
        })
        .collect();
    let rows = cfg
        .gram_scale_runs
        .iter()
        .map(|&r| {
            let slice = &feats[..r];
            let exact_ms = time_median_ms(3, || {
                std::hint::black_box(gram_from_features_with_dot(
                    "wl",
                    slice,
                    1,
                    DotKind::Scalar,
                    None,
                ));
            });
            let blocked_ms = time_median_ms(3, || {
                std::hint::black_box(gram_from_features_with_dot(
                    "wl",
                    slice,
                    1,
                    DotKind::Blocked,
                    None,
                ));
            });
            let prev = gram_from_features_with_dot("wl", &slice[..r - 1], 1, DotKind::Scalar, None);
            let append_ms = time_median_ms(3, || {
                std::hint::black_box(gram_append(&prev, slice, 1, DotKind::Scalar, None));
            });
            let k = (r as f64).sqrt().round() as usize;
            let mut bound = 0.0;
            let landmark_ms = time_median_ms(3, || {
                let a = landmark_gram("wl", slice, k, 1, DotKind::Scalar, None);
                bound = a.error_bound;
                std::hint::black_box(a);
            });
            GramScaleRow {
                runs: r,
                exact_ms,
                blocked_ms,
                append_ms,
                landmark_ms,
                landmark_k: k,
                landmark_error_bound: bound,
                blocked_speedup: if blocked_ms > 0.0 {
                    exact_ms / blocked_ms
                } else {
                    0.0
                },
                append_speedup: if append_ms > 0.0 {
                    exact_ms / append_ms
                } else {
                    0.0
                },
            }
        })
        .collect();
    GramScaleReport {
        pattern: Pattern::Amg2013.to_string(),
        source_runs: source.len(),
        wl_lanes4_ms,
        wl_lanes8_ms,
        rows,
    }
}

/// Run `samples` campaigns per paper pattern and report the mean per-stage
/// wall-times from the metrics registry's span timers.
pub fn run_baseline(cfg: &BaselineConfig) -> BaselineReport {
    let mut rows = Vec::with_capacity(Pattern::ALL.len());
    for p in Pattern::ALL {
        let ccfg = CampaignConfig::new(p, cfg.procs)
            .runs(cfg.runs)
            .base_seed(cfg.base_seed);
        // Pipelined pass (the shipped default): end-to-end totals plus the
        // fused kernel stage's features/tail split.
        let reg = MetricsRegistry::new();
        for _ in 0..cfg.samples {
            run_campaign_with_metrics(&ccfg, Some(&reg)).expect("baseline campaign");
        }
        let report = reg.report();
        // Barrier pass: the classic per-stage features/gram split the
        // pipelined schedule dissolves.
        let barrier_cfg = ccfg.clone().schedule(GramSchedule::Barrier);
        let barrier_reg = MetricsRegistry::new();
        for _ in 0..cfg.samples {
            run_campaign_with_metrics(&barrier_cfg, Some(&barrier_reg))
                .expect("barrier baseline campaign");
        }
        let barrier = barrier_reg.report();
        // Overhead pass: untraced vs traced end-to-end medians over at
        // least MIN_OVERHEAD_SAMPLES timings each (fresh registry per
        // timing so one campaign = one span observation).
        let ov_samples = cfg.samples.max(MIN_OVERHEAD_SAMPLES);
        let campaign_total_ms = |observed: bool| -> f64 {
            let r = MetricsRegistry::new();
            if observed {
                let tracer = Tracer::new();
                r.attach_tracer(&tracer);
                run_campaign_observed(&ccfg, Some(&r), Some(&tracer), 0)
                    .expect("traced baseline campaign");
            } else {
                run_campaign_with_metrics(&ccfg, Some(&r)).expect("untraced baseline campaign");
            }
            r.report()
                .span("campaign")
                .map(|s| s.total_ns as f64 / 1e6)
                .unwrap_or(0.0)
        };
        let untraced: Vec<f64> = (0..ov_samples).map(|_| campaign_total_ms(false)).collect();
        let traced: Vec<f64> = (0..ov_samples).map(|_| campaign_total_ms(true)).collect();
        let untraced_median = median(untraced);
        let traced_median = median(traced);
        let trace_overhead_pct = if untraced_median >= TRACE_OVERHEAD_FLOOR_MS {
            Some((traced_median - untraced_median) / untraced_median * 100.0)
        } else {
            None
        };
        // Store pass: each sample runs the campaign twice against a fresh
        // artifact store — once cold (everything computed and published)
        // and once warm (everything served back) — so the report carries
        // the speedup a resumed/incremental campaign gets from the store.
        let mut cold_ns = 0u128;
        let mut warm_ns = 0u128;
        for s in 0..cfg.samples {
            let dir = std::env::temp_dir().join(format!(
                "anacin_bench_store_{}_{}_{}",
                std::process::id(),
                p,
                s
            ));
            std::fs::remove_dir_all(&dir).ok();
            let store = ArtifactStore::open(&dir).expect("baseline store");
            let t = Instant::now();
            run_campaign_incremental(&ccfg, &store).expect("cold store campaign");
            cold_ns += t.elapsed().as_nanos();
            let t = Instant::now();
            run_campaign_incremental(&ccfg, &store).expect("warm store campaign");
            warm_ns += t.elapsed().as_nanos();
            std::fs::remove_dir_all(&dir).ok();
        }
        let store_cold_ms = cold_ns as f64 / cfg.samples.max(1) as f64 / 1e6;
        let store_warm_ms = warm_ns as f64 / cfg.samples.max(1) as f64 / 1e6;
        let store_speedup = if store_warm_ms > 0.0 {
            store_cold_ms / store_warm_ms
        } else {
            0.0
        };
        // Each campaign records one span per stage, so mean = total / count
        // (guarded: a span deserialised or merged with zero count means 0).
        let mean_ms = |rep: &anacin_obs::MetricsReport, path: &str| {
            rep.span(path)
                .map(|s| {
                    if s.count == 0 {
                        0.0
                    } else {
                        s.total_ns as f64 / s.count as f64 / 1e6
                    }
                })
                .unwrap_or(0.0)
        };
        let features_ms = mean_ms(&barrier, "campaign/kernel/features");
        let gram_ms = mean_ms(&barrier, "campaign/kernel/gram");
        let features_pipelined_ms = mean_ms(&report, "campaign/kernel/pipeline/features");
        let gram_pipelined_ms = mean_ms(&report, "campaign/kernel/pipeline/gram");
        let fused = features_pipelined_ms + gram_pipelined_ms;
        let kernel_speedup = if fused > 0.0 {
            (features_ms + gram_ms) / fused
        } else {
            0.0
        };
        rows.push(StageTimings {
            pattern: p.to_string(),
            samples: cfg.samples,
            simulate_ms: mean_ms(&report, "campaign/simulate"),
            graph_ms: mean_ms(&report, "campaign/graph"),
            features_ms,
            gram_ms,
            features_pipelined_ms,
            gram_pipelined_ms,
            kernel_speedup,
            total_ms: mean_ms(&report, "campaign"),
            trace_overhead_pct,
            events: report.counter("sim/events").unwrap_or(0),
            dot_products: report.counter("kernel/dot_products").unwrap_or(0),
            store_cold_ms,
            store_warm_ms,
            store_speedup,
        });
    }
    BaselineReport {
        procs: cfg.procs,
        runs: cfg.runs,
        samples: cfg.samples,
        patterns: rows,
        serve: None,
        gram_scale: Some(run_gram_scale(cfg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_samples() {
        assert_eq!(median(vec![]), 0.0);
        assert_eq!(median(vec![3.0]), 3.0);
        assert_eq!(median(vec![4.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(vec![4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn tiny_baseline_covers_every_pattern() {
        let cfg = BaselineConfig {
            procs: 4,
            runs: 2,
            samples: 1,
            base_seed: 1,
            gram_scale_runs: vec![8, 16],
        };
        let r = run_baseline(&cfg);
        assert_eq!(r.patterns.len(), Pattern::ALL.len());
        for row in &r.patterns {
            assert!(
                row.total_ms > 0.0,
                "{}: total {}",
                row.pattern,
                row.total_ms
            );
            assert!(row.simulate_ms >= 0.0);
            assert!(row.events > 0);
            assert_eq!(row.dot_products, 2 * 3 / 2);
            assert!(row.features_ms >= 0.0, "{}", row.pattern);
            assert!(row.features_pipelined_ms >= 0.0, "{}", row.pattern);
            assert!(row.gram_pipelined_ms >= 0.0, "{}", row.pattern);
            assert!(row.kernel_speedup >= 0.0, "{}", row.pattern);
            // Tiny 4-proc campaigns sit under the noise floor, so the
            // overhead column must be suppressed, not reported as noise.
            if let Some(v) = row.trace_overhead_pct {
                assert!(v.is_finite(), "{}", row.pattern);
            }
            assert!(row.store_cold_ms > 0.0, "{}", row.pattern);
            assert!(row.store_warm_ms > 0.0, "{}", row.pattern);
            assert!(row.store_speedup > 0.0, "{}", row.pattern);
        }
        let table = r.render_table();
        assert!(
            table.contains("message-race") || table.contains("race"),
            "{table}"
        );
        assert!(table.contains("collectives"), "{table}");
        assert!(table.contains("stencil2d"), "{table}");
        assert!(table.contains("trace_ovh%"), "{table}");
        assert!(table.contains("kernel_x"), "{table}");
        assert!(table.contains("store_x"), "{table}");
        let g = r.gram_scale.as_ref().expect("gram_scale section");
        assert_eq!(g.pattern, "amg2013");
        assert_eq!(g.source_runs, 10);
        assert!(g.wl_lanes4_ms >= 0.0 && g.wl_lanes8_ms >= 0.0);
        assert_eq!(g.rows.len(), 2);
        for (row, want) in g.rows.iter().zip([8usize, 16]) {
            assert_eq!(row.runs, want);
            assert!(row.exact_ms > 0.0, "R={}", row.runs);
            assert!(row.blocked_ms > 0.0 && row.append_ms > 0.0 && row.landmark_ms > 0.0);
            assert_eq!(row.landmark_k, (row.runs as f64).sqrt().round() as usize);
            assert!(
                row.landmark_error_bound.is_finite() && row.landmark_error_bound >= 0.0,
                "R={}: bound {}",
                row.runs,
                row.landmark_error_bound
            );
            assert!(row.blocked_speedup > 0.0 && row.append_speedup > 0.0);
        }
        assert!(table.contains("gram_scale"), "{table}");
        // Serialises cleanly for BENCH_baseline.json.
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"patterns\""));
        assert!(json.contains("\"trace_overhead_pct\""));
        assert!(json.contains("\"features_pipelined_ms\""));
        assert!(json.contains("\"gram_pipelined_ms\""));
        assert!(json.contains("\"kernel_speedup\""));
        assert!(json.contains("\"store_cold_ms\""));
        assert!(json.contains("\"store_warm_ms\""));
        assert!(json.contains("\"store_speedup\""));
        assert!(json.contains("\"gram_scale\""));
        assert!(json.contains("\"wl_lanes4_ms\""));
        assert!(json.contains("\"append_speedup\""));
        assert!(json.contains("\"landmark_error_bound\""));
    }
}
