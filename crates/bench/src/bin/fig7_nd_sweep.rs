//! Regenerates Figure 7 of the paper. Pass --paper-scale for the paper's
//! full 16/32-process, 20-run scale (default: quick laptop scale).

fn main() {
    let scale = if std::env::args().any(|a| a == "--paper-scale") {
        anacin_bench::Scale::paper()
    } else {
        anacin_bench::Scale::quick()
    };
    let fig = anacin_bench::by_id("fig7", &scale).expect("known figure id");
    println!("=== {} ===", fig.title);
    println!("{}", fig.text);
    for (claim, ok) in &fig.checks {
        println!("[{}] {claim}", if *ok { "PASS" } else { "FAIL" });
    }
    if let Some(svg) = &fig.svg {
        std::fs::create_dir_all("figures").expect("create figures dir");
        let path = format!("figures/{}.svg", fig.id);
        std::fs::write(&path, svg).expect("write svg");
        println!("wrote {path}");
    }
    assert!(fig.passed(), "shape checks failed");
}
