//! Regeneration of every table and figure in the paper.
//!
//! One function per artifact. Each returns a [`FigureOutput`] holding the
//! printable series/rows (what the paper reports), optionally an SVG
//! rendering, and a list of *shape checks* — the qualitative claims the
//! paper makes about the artifact (who is bigger, what trend holds) that
//! our reproduction must reproduce. EXPERIMENTS.md records these
//! paper-vs-measured comparisons.

use anacin_core::prelude::*;
use anacin_course::prelude::{table_i, table_ii};
use anacin_event_graph::EventGraph;
use anacin_miniapps::{MiniAppConfig, Pattern};
use anacin_mpisim::prelude::*;
use anacin_stats::prelude::*;
use anacin_viz::{ascii, svg};

/// Experiment scale: paper-faithful or laptop-quick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Process count for the "small" violin (paper: 16).
    pub procs_small: u32,
    /// Process count for the "large" violin (paper: 32).
    pub procs_large: u32,
    /// AMG process count for Figures 7/8 (paper: 32).
    pub amg_procs: u32,
    /// Runs per setting (paper: 20).
    pub runs: u32,
}

impl Scale {
    /// The paper's scale: 16/32 processes, 20 runs per setting.
    pub fn paper() -> Scale {
        Scale {
            procs_small: 16,
            procs_large: 32,
            amg_procs: 32,
            runs: 20,
        }
    }

    /// A reduced scale for fast test runs. 16 runs per setting keeps the
    /// Fig. 7 Spearman check well clear of its 0.85 threshold at this
    /// process count; 8 runs leaves it rank-noise-limited.
    pub fn quick() -> Scale {
        Scale {
            procs_small: 6,
            procs_large: 12,
            amg_procs: 6,
            runs: 16,
        }
    }
}

/// One regenerated artifact.
#[derive(Debug, Clone)]
pub struct FigureOutput {
    /// Artifact id, e.g. "fig7" or "tables".
    pub id: String,
    /// Title, matching the paper's caption.
    pub title: String,
    /// The printable rows/series the paper reports.
    pub text: String,
    /// SVG rendering, where the artifact is graphical.
    pub svg: Option<String>,
    /// Shape checks: `(claim, holds)`.
    pub checks: Vec<(String, bool)>,
}

impl FigureOutput {
    /// True when every shape check holds.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|(_, ok)| *ok)
    }
}

fn graph_of(pattern: Pattern, cfg: &MiniAppConfig, nd: f64, seed: u64) -> EventGraph {
    let p = pattern.build(cfg);
    let t = simulate(&p, &SimConfig::with_nd_percent(nd, seed)).expect("pattern completes");
    EventGraph::from_trace(&t)
}

/// Tables I and II: the course structure.
pub fn tables() -> FigureOutput {
    let text = format!("{}\n{}", table_i(), table_ii());
    let checks = vec![
        (
            "Table I lists 6 goals over 3 levels".to_string(),
            anacin_course::prelude::GOALS.len() == 6,
        ),
        (
            "Table II lists 2 prerequisites per level".to_string(),
            anacin_course::prelude::PREREQUISITES.len() == 6,
        ),
    ];
    FigureOutput {
        id: "tables".to_string(),
        title: "Tables I & II: learning objectives and prerequisites".to_string(),
        text,
        svg: None,
        checks,
    }
}

/// Figure 1: an event graph of an MPI communication pattern between three
/// processes.
pub fn fig1() -> FigureOutput {
    // Three processes exchanging a short chain of point-to-point
    // messages, as in the paper's illustrative example.
    let mut b = ProgramBuilder::new(3);
    b.rank(Rank(0))
        .send(Rank(1), Tag(0), 1)
        .recv(Rank(2), Tag(2).into());
    b.rank(Rank(1))
        .recv(Rank(0), Tag(0).into())
        .send(Rank(2), Tag(1), 1);
    b.rank(Rank(2))
        .recv(Rank(1), Tag(1).into())
        .send(Rank(0), Tag(2), 1);
    let t = simulate(&b.build(), &SimConfig::deterministic()).expect("completes");
    let g = EventGraph::from_trace(&t);
    let checks = vec![
        ("three process rows".to_string(), g.world_size() == 3),
        (
            "nodes are MPI events linked by on-process and inter-process edges".to_string(),
            g.message_edge_count() == 3 && g.edge_count() > g.message_edge_count(),
        ),
    ];
    FigureOutput {
        id: "fig1".to_string(),
        title: "Fig. 1: event graph of an MPI communication pattern on 3 processes".to_string(),
        text: ascii::event_graph_lanes(&g),
        svg: Some(svg::event_graph_svg(&g, "Fig. 1")),
        checks,
    }
}

/// Figure 2: message-race event graph on 4 processes.
pub fn fig2() -> FigureOutput {
    let g = graph_of(Pattern::MessageRace, &MiniAppConfig::with_procs(4), 0.0, 1);
    let checks = vec![
        (
            "three senders, each sending one message to rank 0".to_string(),
            g.message_edge_count() == 3,
        ),
        ("rank 0 receives from all three other ranks".to_string(), {
            let mut srcs = g.match_order(Rank(0));
            srcs.sort();
            srcs == vec![Rank(1), Rank(2), Rank(3)]
        }),
    ];
    FigureOutput {
        id: "fig2".to_string(),
        title: "Fig. 2: message race communication pattern on 4 MPI processes".to_string(),
        text: ascii::event_graph_lanes(&g),
        svg: Some(svg::event_graph_svg(&g, "Fig. 2")),
        checks,
    }
}

/// Figure 3: AMG 2013 pattern on 2 processes.
pub fn fig3() -> FigureOutput {
    let g = graph_of(Pattern::Amg2013, &MiniAppConfig::with_procs(2), 0.0, 1);
    let checks = vec![
        (
            "each process sends one message to the other, twice".to_string(),
            g.message_edge_count() == 4,
        ),
        ("two process rows".to_string(), g.world_size() == 2),
    ];
    FigureOutput {
        id: "fig3".to_string(),
        title: "Fig. 3: AMG 2013 communication pattern on 2 MPI processes".to_string(),
        text: ascii::event_graph_lanes(&g),
        svg: Some(svg::event_graph_svg(&g, "Fig. 3")),
        checks,
    }
}

/// Figure 4: two independent 100%-ND runs of the message race with
/// different communication patterns.
pub fn fig4() -> FigureOutput {
    let cfg = MiniAppConfig::with_procs(4);
    let ga = graph_of(Pattern::MessageRace, &cfg, 100.0, 1);
    let mut gb = None;
    let mut seed_b = 0;
    for seed in 2..200 {
        let g = graph_of(Pattern::MessageRace, &cfg, 100.0, seed);
        if g.match_order(Rank(0)) != ga.match_order(Rank(0)) {
            seed_b = seed;
            gb = Some(g);
            break;
        }
    }
    let gb = gb.expect("a differing run exists within 200 seeds");
    let text = format!(
        "(a) seed 1:\n{}\n(b) seed {}:\n{}\nmatch order (a): {:?}\nmatch order (b): {:?}\n",
        ascii::event_graph_lanes(&ga),
        seed_b,
        ascii::event_graph_lanes(&gb),
        ga.match_order(Rank(0)),
        gb.match_order(Rank(0)),
    );
    let svg_combined = format!(
        "{}\n{}",
        svg::event_graph_svg(&ga, "Fig. 4a"),
        svg::event_graph_svg(&gb, "Fig. 4b")
    );
    let checks = vec![
        (
            "same code, same inputs, different match order".to_string(),
            ga.match_order(Rank(0)) != gb.match_order(Rank(0)),
        ),
        (
            "both runs have identical node structure".to_string(),
            ga.node_count() == gb.node_count() && ga.edge_count() == gb.edge_count(),
        ),
    ];
    FigureOutput {
        id: "fig4".to_string(),
        title: "Fig. 4: two non-deterministic executions of the message race (4 processes, \
                100% ND)"
            .to_string(),
        text,
        svg: Some(svg_combined),
        checks,
    }
}

fn violin_figure(
    id: &str,
    title: &str,
    sweep: &Sweep,
    claim: String,
    claim_holds: bool,
) -> FigureOutput {
    let violins: Vec<ViolinSummary> = sweep
        .points
        .iter()
        .filter_map(|p| p.measurement.violin())
        .collect();
    let mut text = ascii::violins(&violins, 48);
    text.push('\n');
    text.push_str(&sweep_table(sweep));
    FigureOutput {
        id: id.to_string(),
        title: title.to_string(),
        text,
        svg: Some(svg::violin_svg(&violins, title, "kernel distance")),
        checks: vec![(claim, claim_holds)],
    }
}

/// Figure 5: kernel distances for unstructured mesh at two process counts
/// (paper: 32 vs 16; more processes ⇒ more non-determinism).
pub fn fig5(scale: &Scale) -> FigureOutput {
    let base = CampaignConfig::new(Pattern::UnstructuredMesh, scale.procs_small).runs(scale.runs);
    let sweep =
        sweep_procs(&base, &[scale.procs_small, scale.procs_large]).expect("sweep completes");
    let small = &sweep.points[0].measurement;
    let large = &sweep.points[1].measurement;
    let holds = large.summary.median > small.summary.median
        && large.significantly_greater_than(small, 0.05);
    violin_figure(
        "fig5",
        &format!(
            "Fig. 5: kernel distances, Unstructured Mesh, {} runs ({} vs {} processes)",
            scale.runs, scale.procs_large, scale.procs_small
        ),
        &sweep,
        format!(
            "{} processes more non-deterministic than {} (median {:.3} > {:.3}, MWU p<0.05)",
            scale.procs_large, scale.procs_small, large.summary.median, small.summary.median
        ),
        holds,
    )
}

/// Figure 6: kernel distances for unstructured mesh at 1 vs 2 iterations
/// (paper: 16 processes; more iterations ⇒ more non-determinism).
pub fn fig6(scale: &Scale) -> FigureOutput {
    let base = CampaignConfig::new(Pattern::UnstructuredMesh, scale.procs_small).runs(scale.runs);
    let sweep = sweep_iterations(&base, &[1, 2]).expect("sweep completes");
    let one = &sweep.points[0].measurement;
    let two = &sweep.points[1].measurement;
    let holds =
        two.summary.median > one.summary.median && two.significantly_greater_than(one, 0.05);
    violin_figure(
        "fig6",
        &format!(
            "Fig. 6: kernel distances, Unstructured Mesh, {} runs, {} processes (2 vs 1 \
             iterations)",
            scale.runs, scale.procs_small
        ),
        &sweep,
        format!(
            "2 iterations more non-deterministic than 1 (median {:.3} > {:.3}, MWU p<0.05)",
            two.summary.median, one.summary.median
        ),
        holds,
    )
}

/// Figure 7: kernel distance vs percentage of non-determinism for AMG
/// 2013 (paper: 32 processes, 0..100% step 10, 1 node, 1 iteration,
/// 1-byte messages; monotone increase).
pub fn fig7(scale: &Scale) -> FigureOutput {
    let base = CampaignConfig::new(Pattern::Amg2013, scale.amg_procs).runs(scale.runs);
    let percents: Vec<f64> = (0..=10).map(|i| i as f64 * 10.0).collect();
    let sweep = sweep_nd_percent(&base, &percents).expect("sweep completes");
    let rho = sweep.spearman_monotonicity();
    let at_zero = sweep.points[0].measurement.mean();
    let series = sweep.mean_series();
    let violins: Vec<ViolinSummary> = sweep
        .points
        .iter()
        .filter_map(|p| p.measurement.violin())
        .collect();
    let mut text = ascii::series_table(&series, "nd %", "kernel distance");
    text.push('\n');
    text.push_str(&ascii::violins(&violins, 48));
    let title = format!(
        "Fig. 7: kernel distance vs % non-determinism, AMG 2013, {} processes, {} runs/point",
        scale.amg_procs, scale.runs
    );
    let svg_out = format!(
        "{}\n{}",
        svg::line_chart_svg(
            &series,
            &title,
            "percentage of non-determinism",
            "kernel distance"
        ),
        svg::violin_svg(&violins, &title, "kernel distance")
    );
    FigureOutput {
        id: "fig7".to_string(),
        title,
        text,
        svg: Some(svg_out),
        checks: vec![
            (
                format!("distance increases with injected ND% (Spearman rho = {rho:.3} > 0.85)"),
                rho > 0.85,
            ),
            (
                "distance at 0% non-determinism is zero".to_string(),
                at_zero == 0.0,
            ),
        ],
    }
}

/// Figure 8: normalized relative frequency of callstacks in
/// high-non-determinism regions of AMG 2013 (same settings as Fig. 7).
pub fn fig8(scale: &Scale) -> FigureOutput {
    let cfg = CampaignConfig::new(Pattern::Amg2013, scale.amg_procs).runs(scale.runs);
    let campaign = run_campaign(&cfg).expect("campaign completes");
    let ranking = analyze(&campaign, &RootCauseConfig::default());
    let items: Vec<(String, f64)> = ranking
        .entries
        .iter()
        .take(8)
        .map(|e| (e.stack.clone(), e.frequency))
        .collect();
    let mut text = ascii::bar_chart(&items, 48);
    text.push('\n');
    text.push_str(&ranking_table(&ranking, 8));
    let top_is_recv = ranking
        .top()
        .map(|t| t.leaf.to_ascii_lowercase().contains("recv"))
        .unwrap_or(false);
    let freqs_normalised = {
        let sum: f64 = ranking.entries.iter().map(|e| e.frequency).sum();
        (sum - 1.0).abs() < 1e-9
    };
    let title = format!(
        "Fig. 8: callstack frequencies in high-ND regions, AMG 2013, {} processes",
        scale.amg_procs
    );
    FigureOutput {
        id: "fig8".to_string(),
        title: title.clone(),
        text,
        svg: Some(svg::bar_chart_svg(
            &items,
            &title,
            "normalized relative frequency",
        )),
        checks: vec![
            (
                "top-ranked call path is a (wildcard) receive — the root source".to_string(),
                top_is_recv,
            ),
            (
                "relative frequencies are normalized (sum to 1)".to_string(),
                freqs_normalised,
            ),
        ],
    }
}

/// Regenerate an artifact by id ("tables", "fig1" … "fig8", or "1".."8").
pub fn by_id(id: &str, scale: &Scale) -> Option<FigureOutput> {
    match id.trim_start_matches("fig") {
        "tables" | "table" => Some(tables()),
        "1" => Some(fig1()),
        "2" => Some(fig2()),
        "3" => Some(fig3()),
        "4" => Some(fig4()),
        "5" => Some(fig5(scale)),
        "6" => Some(fig6(scale)),
        "7" => Some(fig7(scale)),
        "8" => Some(fig8(scale)),
        _ => None,
    }
}

/// All artifact ids, in paper order.
pub const ALL_IDS: [&str; 9] = [
    "tables", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_figures_pass_their_checks() {
        for f in [tables(), fig1(), fig2(), fig3(), fig4()] {
            assert!(f.passed(), "{}: {:?}", f.id, f.checks);
            assert!(!f.text.is_empty());
        }
    }

    #[test]
    fn fig5_quick_scale_passes() {
        let f = fig5(&Scale::quick());
        assert!(f.passed(), "{:?}", f.checks);
        assert!(f.svg.as_deref().unwrap().contains("<polygon"));
    }

    #[test]
    fn fig6_quick_scale_passes() {
        let f = fig6(&Scale::quick());
        assert!(f.passed(), "{:?}", f.checks);
    }

    #[test]
    fn fig7_quick_scale_passes() {
        let f = fig7(&Scale::quick());
        assert!(f.passed(), "{:?}", f.checks);
        assert!(f.svg.as_deref().unwrap().contains("<polyline"));
    }

    #[test]
    fn fig8_quick_scale_passes() {
        let f = fig8(&Scale::quick());
        assert!(f.passed(), "{:?}", f.checks);
        assert!(f.text.contains("MPI_Irecv"));
    }

    #[test]
    fn by_id_resolves_every_artifact() {
        let s = Scale::quick();
        for id in ALL_IDS {
            // Only resolve the cheap ones here; the heavy ones are covered
            // above. by_id must at least recognise the id.
            if matches!(id, "tables" | "fig1" | "fig2" | "fig3") {
                assert!(by_id(id, &s).is_some(), "{id}");
            }
        }
        assert!(by_id("nope", &s).is_none());
        assert!(by_id("fig1", &s).is_some(), "'figN' form must normalise");
    }
}
