//! Bench-trend regression gate: ingest a series of per-commit BENCH
//! reports and flag stage timings that regressed against their own
//! recent history.
//!
//! CI keeps one `BENCH_baseline.json` / `BENCH_large.json` per commit
//! (or per nightly). `anacin bench trend <dir>` reads every such file in
//! lexicographic (= chronological, when names embed a date or sequence
//! number) order, builds one series per `(report kind, pattern, metric)`
//! and compares the newest point against the trailing median of the
//! previous few: noisy single samples don't trip the gate, a sustained
//! step does. `--json` emits the full [`TrendReport`] and the CLI exits
//! non-zero when anything is flagged, so the gate is one CI step.
//!
//! Reports are parsed through the [`serde::Value`] tree rather than
//! typed structs so old reports with missing fields (and future reports
//! with extra ones) stay ingestible.

use serde::{map_get, Serialize};

/// Stage metrics tracked per pattern of a paper-tier baseline report.
const BASELINE_METRICS: &[&str] = &[
    "simulate_ms",
    "graph_ms",
    "features_ms",
    "gram_ms",
    "total_ms",
];

/// Stage metrics tracked per pattern of a 1024-rank large-tier report.
const LARGE_METRICS: &[&str] = &[
    "simulate_ms",
    "graph_ms",
    "features_ms",
    "gram_ms",
    "campaign_ms",
    "peak_rss_mib",
];

/// Service-path metrics tracked from a baseline report's `serve` row.
const SERVE_METRICS: &[&str] = &["serve_cold_ms", "serve_warm_ms"];

/// Dot-schedule metrics tracked per run count of a baseline report's
/// `gram_scale` section.
const GRAM_SCALE_METRICS: &[&str] = &["exact_ms", "blocked_ms", "append_ms", "landmark_ms"];

/// Regressions smaller than this many units (milliseconds / MiB) never
/// flag, whatever the relative change: sub-millisecond stages jitter by
/// integer factors without meaning anything.
const ABSOLUTE_FLOOR: f64 = 0.5;

/// Gate parameters: how much slower than the trailing median the newest
/// point must be to flag, and how much history feeds that median.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TrendConfig {
    /// Relative regression threshold, percent (default 30).
    pub threshold_pct: f64,
    /// Trailing points (before the newest) the median is taken over
    /// (default 5).
    pub window: usize,
}

impl Default for TrendConfig {
    fn default() -> Self {
        TrendConfig {
            threshold_pct: 30.0,
            window: 5,
        }
    }
}

/// One report's contribution to a series.
#[derive(Debug, Clone, Serialize)]
pub struct TrendPoint {
    /// File the value came from.
    pub file: String,
    /// Metric value (milliseconds or MiB).
    pub value: f64,
}

/// The history of one `(kind, pattern, metric)` metric across reports.
#[derive(Debug, Clone, Serialize)]
pub struct TrendSeries {
    /// Report kind: `baseline` (paper tier) or `large` (1024-rank tier).
    pub kind: String,
    /// Communication pattern the row measures.
    pub pattern: String,
    /// Stage metric name, e.g. `simulate_ms`.
    pub metric: String,
    /// Chronological points, oldest first.
    pub points: Vec<TrendPoint>,
    /// Trailing median the newest point was compared against (absent
    /// for single-point series).
    pub trailing_median: Option<f64>,
    /// Newest / median ratio in percent above baseline (0 = no change).
    pub delta_pct: Option<f64>,
    /// True when the newest point regressed past the threshold.
    pub flagged: bool,
}

/// Everything `bench trend` computed, serialised verbatim by `--json`.
#[derive(Debug, Clone, Serialize)]
pub struct TrendReport {
    /// Gate parameters used.
    pub config: TrendConfig,
    /// Report files ingested, chronological order.
    pub files: Vec<String>,
    /// Every series with at least one point.
    pub series: Vec<TrendSeries>,
    /// Number of flagged series.
    pub regressions: usize,
}

/// Median of a non-empty slice (average of the two middles for even
/// lengths).
fn median(values: &[f64]) -> f64 {
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// One `(pattern, metric, value)` measurement extracted from a report.
type MetricRow = (String, String, f64);

/// The `(kind, rows)` of one parsed report: kind plus
/// `(pattern, metric, value)` triples.
fn extract(content: &str) -> Result<(String, Vec<MetricRow>), String> {
    let root = serde_json::from_str_value(content).map_err(|e| e.to_string())?;
    let obj = root.as_object().ok_or("report is not a JSON object")?;
    // Baseline reports carry a top-level sample count; large-tier
    // reports don't. That one key distinguishes the schemas.
    let is_baseline = !map_get(obj, "samples").is_null();
    let kind = if is_baseline { "baseline" } else { "large" };
    let metrics = if is_baseline {
        BASELINE_METRICS
    } else {
        LARGE_METRICS
    };
    let patterns = map_get(obj, "patterns")
        .as_array()
        .ok_or("report has no 'patterns' array")?;
    let mut rows = Vec::new();
    for p in patterns {
        let row = p.as_object().ok_or("pattern row is not an object")?;
        let name = map_get(row, "pattern")
            .as_str()
            .ok_or("pattern row has no 'pattern' name")?
            .to_string();
        for metric in metrics {
            if let Some(value) = map_get(row, metric).as_f64() {
                rows.push((name.clone(), metric.to_string(), value));
            }
        }
    }
    // Baseline reports that went through the CLI also carry a `serve`
    // row: submit→result latency through the service socket. Older
    // reports simply lack the key, so the series starts when the row
    // first appears.
    if let Some(s) = map_get(obj, "serve").as_object() {
        let name = map_get(s, "pattern")
            .as_str()
            .unwrap_or("serve")
            .to_string();
        for metric in SERVE_METRICS {
            if let Some(value) = map_get(s, metric).as_f64() {
                rows.push((format!("serve/{name}"), metric.to_string(), value));
            }
        }
    }
    // Newer baseline reports carry a `gram_scale` section: the dot
    // schedules raced on a fixed feature set at growing run counts,
    // plus the WL lane-width A/B. Older reports lack the key and their
    // series simply start when it appears.
    if let Some(g) = map_get(obj, "gram_scale").as_object() {
        for metric in ["wl_lanes4_ms", "wl_lanes8_ms"] {
            if let Some(value) = map_get(g, metric).as_f64() {
                rows.push(("gram_scale".to_string(), metric.to_string(), value));
            }
        }
        if let Some(scale_rows) = map_get(g, "rows").as_array() {
            for row in scale_rows {
                let Some(row) = row.as_object() else { continue };
                let Some(r) = map_get(row, "runs").as_f64() else {
                    continue;
                };
                for metric in GRAM_SCALE_METRICS {
                    if let Some(value) = map_get(row, metric).as_f64() {
                        rows.push((
                            format!("gram_scale/{}", r as u64),
                            metric.to_string(),
                            value,
                        ));
                    }
                }
            }
        }
    }
    Ok((kind.to_string(), rows))
}

/// Analyze already-loaded `(file name, file content)` pairs, in the
/// order given (oldest first).
pub fn analyze_files(
    files: &[(String, String)],
    config: &TrendConfig,
) -> Result<TrendReport, String> {
    let mut order: Vec<(String, String, String)> = Vec::new(); // (kind, pattern, metric)
    let mut series: Vec<Vec<TrendPoint>> = Vec::new();
    for (name, content) in files {
        let (kind, rows) = extract(content).map_err(|e| format!("{name}: {e}"))?;
        for (pattern, metric, value) in rows {
            let key = (kind.clone(), pattern, metric);
            let idx = match order.iter().position(|k| *k == key) {
                Some(i) => i,
                None => {
                    order.push(key);
                    series.push(Vec::new());
                    series.len() - 1
                }
            };
            series[idx].push(TrendPoint {
                file: name.clone(),
                value,
            });
        }
    }
    let mut out = Vec::new();
    let mut regressions = 0usize;
    for ((kind, pattern, metric), points) in order.into_iter().zip(series) {
        let (trailing_median, delta_pct, flagged) = if points.len() >= 2 {
            let last = points.last().map(|p| p.value).unwrap_or(0.0);
            let prior = &points[..points.len() - 1];
            let tail = &prior[prior.len().saturating_sub(config.window)..];
            let med = median(&tail.iter().map(|p| p.value).collect::<Vec<_>>());
            let delta = if med > 0.0 {
                (last / med - 1.0) * 100.0
            } else if last > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            let flag = delta > config.threshold_pct && (last - med) > ABSOLUTE_FLOOR;
            (Some(med), Some(delta), flag)
        } else {
            (None, None, false)
        };
        if flagged {
            regressions += 1;
        }
        out.push(TrendSeries {
            kind,
            pattern,
            metric,
            points,
            trailing_median,
            delta_pct,
            flagged,
        });
    }
    Ok(TrendReport {
        config: *config,
        files: files.iter().map(|(n, _)| n.clone()).collect(),
        series: out,
        regressions,
    })
}

/// Analyze every `*BENCH*.json` file directly inside `dir`, in
/// lexicographic name order.
pub fn analyze_dir(dir: &str, config: &TrendConfig) -> Result<TrendReport, String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {dir}: {e}"))?
        .filter_map(|entry| {
            let entry = entry.ok()?;
            let name = entry.file_name().to_string_lossy().into_owned();
            (entry.file_type().ok()?.is_file() && name.contains("BENCH") && name.ends_with(".json"))
                .then_some(name)
        })
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!("no BENCH*.json report files found in {dir}"));
    }
    let mut files = Vec::new();
    for name in names {
        let path = std::path::Path::new(dir).join(&name);
        let content = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        files.push((name, content));
    }
    analyze_files(&files, config)
}

/// Render the per-series trend table: newest value against the trailing
/// median, relative change, and the regression flag CI keys off.
pub fn render_trend_table(report: &TrendReport) -> String {
    let mut rows: Vec<[String; 6]> = Vec::new();
    for s in &report.series {
        let last = s.points.last().map(|p| p.value).unwrap_or(0.0);
        rows.push([
            format!("{}/{}/{}", s.kind, s.pattern, s.metric),
            s.points.len().to_string(),
            s.trailing_median
                .map(|m| format!("{m:.3}"))
                .unwrap_or_else(|| "-".to_string()),
            format!("{last:.3}"),
            s.delta_pct
                .map(|d| format!("{d:+.1}%"))
                .unwrap_or_else(|| "-".to_string()),
            if s.flagged { "REGRESSION" } else { "ok" }.to_string(),
        ]);
    }
    let headers = ["series", "n", "median", "last", "delta", "status"];
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "bench trend over {} report(s): {} series, {} regression(s)\n",
        report.files.len(),
        report.series.len(),
        report.regressions
    ));
    out.push_str(&format!(
        "{:<w0$}  {:>w1$}  {:>w2$}  {:>w3$}  {:>w4$}  {:<w5$}\n",
        headers[0],
        headers[1],
        headers[2],
        headers[3],
        headers[4],
        headers[5],
        w0 = widths[0],
        w1 = widths[1],
        w2 = widths[2],
        w3 = widths[3],
        w4 = widths[4],
        w5 = widths[5],
    ));
    for row in &rows {
        out.push_str(&format!(
            "{:<w0$}  {:>w1$}  {:>w2$}  {:>w3$}  {:>w4$}  {:<w5$}\n",
            row[0],
            row[1],
            row[2],
            row[3],
            row[4],
            row[5],
            w0 = widths[0],
            w1 = widths[1],
            w2 = widths[2],
            w3 = widths[3],
            w4 = widths[4],
            w5 = widths[5],
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn large_report(simulate_ms: f64) -> String {
        format!(
            r#"{{"procs":1024,"runs":3,"iterations":1,"patterns":[
                {{"pattern":"message-race","simulate_ms":{simulate_ms},
                  "graph_ms":1.0,"features_ms":2.0,"gram_ms":0.5,
                  "campaign_ms":10.0,"events":100,"nodes":100,
                  "dot_products":6,"peak_rss_mib":40.0}}]}}"#
        )
    }

    fn baseline_report(total_ms: f64) -> String {
        format!(
            r#"{{"procs":32,"runs":10,"samples":3,"patterns":[
                {{"pattern":"message-race","samples":3,"simulate_ms":0.3,
                  "graph_ms":0.04,"features_ms":0.5,"gram_ms":0.2,
                  "total_ms":{total_ms},"trace_overhead_pct":null,
                  "events":3780,"dot_products":165}}]}}"#
        )
    }

    fn baseline_with_gram_scale(exact_ms: f64) -> String {
        format!(
            r#"{{"procs":32,"runs":10,"samples":3,"patterns":[
                {{"pattern":"message-race","samples":3,"simulate_ms":0.3,
                  "graph_ms":0.04,"features_ms":0.5,"gram_ms":0.2,
                  "total_ms":5.0,"trace_overhead_pct":null,
                  "events":3780,"dot_products":165}}],
                "gram_scale":{{"pattern":"amg2013","source_runs":10,
                  "wl_lanes4_ms":1.2,"wl_lanes8_ms":1.0,
                  "rows":[{{"runs":256,"exact_ms":{exact_ms},"blocked_ms":20.0,
                    "append_ms":0.4,"landmark_ms":4.0,"landmark_k":16,
                    "landmark_error_bound":3.5,"blocked_speedup":2.0,
                    "append_speedup":100.0}}]}}}}"#
        )
    }

    fn files(contents: &[(&str, String)]) -> Vec<(String, String)> {
        contents
            .iter()
            .map(|(n, c)| (n.to_string(), c.clone()))
            .collect()
    }

    #[test]
    fn stable_series_does_not_flag() {
        let fs = files(&[
            ("BENCH_001.json", large_report(100.0)),
            ("BENCH_002.json", large_report(103.0)),
            ("BENCH_003.json", large_report(98.0)),
        ]);
        let r = analyze_files(&fs, &TrendConfig::default()).unwrap();
        assert_eq!(r.regressions, 0);
        assert!(r.series.iter().all(|s| !s.flagged));
        let sim = r.series.iter().find(|s| s.metric == "simulate_ms").unwrap();
        assert_eq!(sim.points.len(), 3);
        assert_eq!(sim.kind, "large");
    }

    #[test]
    fn step_regression_flags_only_the_regressed_metric() {
        let fs = files(&[
            ("BENCH_001.json", large_report(100.0)),
            ("BENCH_002.json", large_report(101.0)),
            ("BENCH_003.json", large_report(150.0)),
        ]);
        let r = analyze_files(&fs, &TrendConfig::default()).unwrap();
        assert_eq!(r.regressions, 1);
        let sim = r.series.iter().find(|s| s.metric == "simulate_ms").unwrap();
        assert!(sim.flagged);
        assert_eq!(sim.trailing_median, Some(100.5));
        assert!(sim.delta_pct.unwrap() > 30.0);
        assert!(r
            .series
            .iter()
            .filter(|s| s.metric != "simulate_ms")
            .all(|s| !s.flagged));
    }

    #[test]
    fn sub_millisecond_jitter_is_below_the_absolute_floor() {
        // 0.1 → 0.2 ms is +100% but only 0.1 ms — noise, not a
        // regression.
        let fs = files(&[
            ("BENCH_001.json", baseline_report(0.1)),
            ("BENCH_002.json", baseline_report(0.2)),
        ]);
        let r = analyze_files(&fs, &TrendConfig::default()).unwrap();
        assert_eq!(r.regressions, 0);
    }

    #[test]
    fn single_report_yields_unflagged_single_point_series() {
        let fs = files(&[("BENCH_baseline.json", baseline_report(1.0))]);
        let r = analyze_files(&fs, &TrendConfig::default()).unwrap();
        assert_eq!(r.regressions, 0);
        assert!(r.series.iter().all(|s| s.points.len() == 1));
        assert!(r.series.iter().all(|s| s.trailing_median.is_none()));
    }

    #[test]
    fn window_bounds_the_trailing_median() {
        // Old slow history must age out of a window of 2.
        let reports: Vec<(&str, String)> = vec![
            ("BENCH_01.json", large_report(500.0)),
            ("BENCH_02.json", large_report(100.0)),
            ("BENCH_03.json", large_report(100.0)),
            ("BENCH_04.json", large_report(150.0)),
        ];
        let fs = files(&reports);
        let cfg = TrendConfig {
            threshold_pct: 30.0,
            window: 2,
        };
        let r = analyze_files(&fs, &cfg).unwrap();
        let sim = r.series.iter().find(|s| s.metric == "simulate_ms").unwrap();
        // Median over [100, 100], not [500, 100, 100]: 150 is +50%.
        assert_eq!(sim.trailing_median, Some(100.0));
        assert!(sim.flagged);
    }

    #[test]
    fn mixed_kinds_keep_separate_series() {
        let fs = files(&[
            ("BENCH_baseline.json", baseline_report(1.0)),
            ("BENCH_large.json", large_report(100.0)),
        ]);
        let r = analyze_files(&fs, &TrendConfig::default()).unwrap();
        assert!(r.series.iter().any(|s| s.kind == "baseline"));
        assert!(r.series.iter().any(|s| s.kind == "large"));
        // Same metric name, different kinds ⇒ different series.
        let sims: Vec<_> = r
            .series
            .iter()
            .filter(|s| s.metric == "simulate_ms")
            .collect();
        assert_eq!(sims.len(), 2);
        assert!(sims.iter().all(|s| s.points.len() == 1));
    }

    #[test]
    fn gram_scale_series_are_tracked_and_gate() {
        let fs = files(&[
            ("BENCH_001.json", baseline_with_gram_scale(40.0)),
            ("BENCH_002.json", baseline_with_gram_scale(41.0)),
            ("BENCH_003.json", baseline_with_gram_scale(80.0)),
        ]);
        let r = analyze_files(&fs, &TrendConfig::default()).unwrap();
        let exact = r
            .series
            .iter()
            .find(|s| s.pattern == "gram_scale/256" && s.metric == "exact_ms")
            .expect("gram_scale exact_ms series");
        assert_eq!(exact.points.len(), 3);
        assert!(exact.flagged, "a doubled exact_ms must trip the gate");
        let lanes = r
            .series
            .iter()
            .find(|s| s.pattern == "gram_scale" && s.metric == "wl_lanes8_ms")
            .expect("lane A/B series");
        assert!(!lanes.flagged);
        // Reports predating the section mix in cleanly: the series just
        // starts at the first report that carries it.
        let fs = files(&[
            ("BENCH_001.json", baseline_report(5.0)),
            ("BENCH_002.json", baseline_with_gram_scale(40.0)),
        ]);
        let r = analyze_files(&fs, &TrendConfig::default()).unwrap();
        assert_eq!(r.regressions, 0);
        assert!(r.series.iter().any(|s| s.pattern == "gram_scale/256"));
    }

    #[test]
    fn table_renders_flag_column() {
        let fs = files(&[
            ("BENCH_001.json", large_report(100.0)),
            ("BENCH_002.json", large_report(200.0)),
        ]);
        let r = analyze_files(&fs, &TrendConfig::default()).unwrap();
        let table = render_trend_table(&r);
        assert!(table.contains("REGRESSION"), "{table}");
        assert!(table.contains("large/message-race/simulate_ms"), "{table}");
        assert!(table.contains("1 regression(s)"), "{table}");
    }
}
