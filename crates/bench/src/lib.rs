//! # anacin-bench
//!
//! The benchmark and reproduction harness: [`figures`] regenerates every
//! table and figure of the paper (with shape checks), and the `benches/`
//! directory holds the Criterion performance benchmarks. Binaries under
//! `src/bin/` print one artifact each (`fig1_event_graph`, …,
//! `fig8_callstacks`, `tables_course`).

#![warn(missing_docs)]

pub mod baseline;
pub mod figures;
pub mod scale;
pub mod trend;

pub use baseline::{
    run_baseline, run_gram_scale, BaselineConfig, BaselineReport, GramScaleReport, GramScaleRow,
    ServeRow, StageTimings,
};
pub use figures::{by_id, FigureOutput, Scale, ALL_IDS};
pub use scale::{
    peak_rss_mib, reset_peak_rss, run_large_baseline, LargeBaselineReport, LargeScaleConfig,
    LargeStageTimings,
};
pub use trend::{
    analyze_dir, analyze_files, render_trend_table, TrendConfig, TrendPoint, TrendReport,
    TrendSeries,
};
