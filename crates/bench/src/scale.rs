//! The large-scale baseline tier: HPC-realistic campaign sizes.
//!
//! Where [`crate::baseline`] measures the paper-scale pipeline (32 procs,
//! every pattern, both kernel schedules, store passes), this tier answers
//! a different question: does one campaign at 1024 ranks and tens of
//! millions of events complete end-to-end, in what time per stage, and
//! within what peak memory? It therefore runs the *streaming* campaign
//! path (`run_campaign_streaming`) — the only path meant for this scale —
//! plus one materialised run for the per-stage simulate/graph/features
//! split, and reads the process peak RSS from `/proc/self/status`
//! (`VmHWM`) on platforms that have it.
//!
//! `anacin bench baseline --scale large` writes the report as
//! `BENCH_large.json`; the nightly CI job uploads it so scaling
//! regressions are visible per commit.

use anacin_core::prelude::*;
use anacin_event_graph::EventGraph;
use anacin_miniapps::Pattern;
use anacin_obs::MetricsRegistry;
use serde::Serialize;
use std::time::Instant;

/// Peak resident set size of this process (`VmHWM`), in MiB. `None` when
/// `/proc/self/status` is unavailable (non-Linux) or unparsable.
pub fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb / 1024.0);
        }
    }
    None
}

/// Reset the kernel's peak-RSS watermark so a following [`peak_rss_mib`]
/// measures only the section in between. Best-effort: returns false when
/// `/proc/self/clear_refs` is absent or not writable.
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Shape of the large-scale tier.
#[derive(Debug, Clone)]
pub struct LargeScaleConfig {
    /// Simulated process count (the tier's reason to exist: 1024).
    pub procs: u32,
    /// Runs per campaign.
    pub runs: u32,
    /// Mini-app iterations per run.
    pub iterations: u32,
    /// Seed of the first run.
    pub base_seed: u64,
}

impl Default for LargeScaleConfig {
    fn default() -> Self {
        LargeScaleConfig {
            // amg2013 at these settings is ~4.2M events per run, ~12.6M
            // per campaign — comfortably past the tens-of-millions bar
            // while keeping the nightly job under a couple of minutes.
            procs: 1024,
            runs: 3,
            iterations: 1,
            base_seed: 1,
        }
    }
}

/// Per-pattern timings of the large tier, in milliseconds.
#[derive(Debug, Clone, Serialize)]
pub struct LargeStageTimings {
    /// The mini-app pattern measured.
    pub pattern: String,
    /// Wall-time of one run's simulation (run 0, measured in isolation).
    pub simulate_ms: f64,
    /// Wall-time of one run's event-graph construction (streaming CSR).
    pub graph_ms: f64,
    /// Wall-time of one run's WL feature extraction (sharded relabelling).
    pub features_ms: f64,
    /// Wall-time of the Gram stage over the full campaign's features.
    pub gram_ms: f64,
    /// End-to-end wall-time of the full streaming campaign.
    pub campaign_ms: f64,
    /// Simulated trace events across the whole campaign.
    pub events: u64,
    /// Event-graph nodes across the whole campaign.
    pub nodes: u64,
    /// Kernel dot products of the campaign's Gram stage.
    pub dot_products: u64,
    /// Peak RSS (MiB) observed across the streaming campaign, watermark-
    /// reset beforehand where the platform allows; `None` off Linux.
    pub peak_rss_mib: Option<f64>,
    /// Relative wall-time cost of streaming a full Chrome trace during
    /// the campaign, percent over the untraced streaming run. `None`
    /// when the untraced run was too fast to compare meaningfully.
    pub trace_overhead_pct: Option<f64>,
}

/// The large-scale baseline report (`BENCH_large.json`).
#[derive(Debug, Clone, Serialize)]
pub struct LargeBaselineReport {
    /// Simulated process count.
    pub procs: u32,
    /// Runs per campaign.
    pub runs: u32,
    /// Mini-app iterations per run.
    pub iterations: u32,
    /// Per-pattern timings.
    pub patterns: Vec<LargeStageTimings>,
}

impl LargeBaselineReport {
    /// Human-readable stage table.
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "large baseline: procs={} runs={} iterations={}\n\
             {:<16} {:>12} {:>10} {:>12} {:>10} {:>12} {:>12} {:>12} {:>10} {:>10}\n",
            self.procs,
            self.runs,
            self.iterations,
            "pattern",
            "simulate_ms",
            "graph_ms",
            "features_ms",
            "gram_ms",
            "campaign_ms",
            "events",
            "nodes",
            "rss_mib",
            "traced_pct"
        );
        for r in &self.patterns {
            let rss = match r.peak_rss_mib {
                Some(v) => format!("{v:.0}"),
                None => "-".to_string(),
            };
            let traced = match r.trace_overhead_pct {
                Some(v) => format!("{v:+.1}"),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "{:<16} {:>12.1} {:>10.1} {:>12.1} {:>10.1} {:>12.1} {:>12} {:>12} {:>10} {:>10}\n",
                r.pattern,
                r.simulate_ms,
                r.graph_ms,
                r.features_ms,
                r.gram_ms,
                r.campaign_ms,
                r.events,
                r.nodes,
                rss,
                traced
            ));
        }
        out
    }
}

/// Run the large-scale tier: message-race as the cheap contrast row, then
/// the amg2013 all-to-all pattern that actually stresses 1024 ranks.
pub fn run_large_baseline(cfg: &LargeScaleConfig) -> LargeBaselineReport {
    let mut rows = Vec::new();
    for p in [Pattern::MessageRace, Pattern::Amg2013] {
        let ccfg = CampaignConfig::new(p, cfg.procs)
            .runs(cfg.runs)
            .iterations(cfg.iterations)
            .base_seed(cfg.base_seed);
        // Stage split, measured on run 0 in isolation: the streaming
        // campaign interleaves stages across workers, so clean per-stage
        // numbers come from one materialised pass over a single run.
        let program = ccfg.pattern.build(&ccfg.app);
        let kernel = ccfg.kernel.instantiate();
        let t = Instant::now();
        let trace = anacin_mpisim::engine::simulate(&program, &ccfg.sim_config(0))
            .expect("large baseline run");
        let simulate_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let graph = EventGraph::from_trace(&trace);
        let graph_ms = t.elapsed().as_secs_f64() * 1e3;
        drop(trace);
        let t = Instant::now();
        let _features = kernel.features(&graph);
        let features_ms = t.elapsed().as_secs_f64() * 1e3;
        drop(graph);
        drop(_features);
        // Full streaming campaign under a fresh watermark.
        reset_peak_rss();
        let reg = MetricsRegistry::new();
        let t = Instant::now();
        let result = run_campaign_streaming_observed(&ccfg, Some(&reg), None, 0)
            .expect("large baseline campaign");
        let campaign_ms = t.elapsed().as_secs_f64() * 1e3;
        let peak = peak_rss_mib();
        let report = reg.report();
        let gram_ms = report
            .span("campaign/kernel/gram")
            .map(|s| s.total_ns as f64 / 1e6)
            .unwrap_or(0.0);
        // Traced streaming pass: the same campaign with a Chrome sink
        // attached, draining through the full formatter into a counting
        // writer (all the serialisation cost, none of the disk noise).
        let trace_overhead_pct = {
            let tracer = anacin_obs::Tracer::with_capacity(anacin_obs::DEFAULT_CAPACITY);
            let bytes = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
            let sink = anacin_obs::ChromeJsonSink::new(
                anacin_obs::CountingWriter::new(std::sync::Arc::clone(&bytes)),
                true,
            )
            .expect("counting sink");
            tracer.attach_sink(Box::new(sink));
            let reg2 = MetricsRegistry::new();
            reg2.attach_tracer(&tracer);
            let t = Instant::now();
            run_campaign_streaming_observed(&ccfg, Some(&reg2), Some(&tracer), 0)
                .expect("large baseline traced campaign");
            tracer.finish_sink().expect("drain traced campaign");
            let traced_ms = t.elapsed().as_secs_f64() * 1e3;
            // The large tier measures each pass once; a ratio of two
            // single samples is only meaningful when the campaign is
            // long enough to dominate warmup/scheduling noise.
            (campaign_ms > 1_000.0).then(|| (traced_ms / campaign_ms - 1.0) * 100.0)
        };
        rows.push(LargeStageTimings {
            pattern: p.to_string(),
            simulate_ms,
            graph_ms,
            features_ms,
            gram_ms,
            campaign_ms,
            events: result.total_events,
            nodes: result.total_nodes,
            dot_products: report.counter("kernel/dot_products").unwrap_or(0),
            peak_rss_mib: peak,
            trace_overhead_pct,
        });
    }
    LargeBaselineReport {
        procs: cfg.procs,
        runs: cfg.runs,
        iterations: cfg.iterations,
        patterns: rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if let Some(mib) = peak_rss_mib() {
            assert!(mib > 0.0);
        }
    }

    #[test]
    fn tiny_large_tier_has_all_columns() {
        // The tier's *shape* at toy size; the real 1024-rank run is the
        // nightly `#[ignore]` test and the CI bench job.
        let cfg = LargeScaleConfig {
            procs: 8,
            runs: 2,
            iterations: 1,
            base_seed: 1,
        };
        let r = run_large_baseline(&cfg);
        assert_eq!(r.patterns.len(), 2);
        for row in &r.patterns {
            assert!(row.campaign_ms > 0.0, "{}", row.pattern);
            assert!(row.simulate_ms >= 0.0);
            assert!(row.events > 0);
            assert!(row.nodes > 0);
            assert!(row.dot_products >= 1);
        }
        let table = r.render_table();
        assert!(table.contains("amg2013"), "{table}");
        assert!(table.contains("rss_mib"), "{table}");
        assert!(table.contains("traced_pct"), "{table}");
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"peak_rss_mib\""));
        assert!(json.contains("\"campaign_ms\""));
        assert!(json.contains("\"trace_overhead_pct\""));
    }
}
