//! Nightly end-to-end scale gate: a 1024-rank amg2013 campaign with tens
//! of millions of events must complete through the streaming path, with
//! peak memory bounded to a few in-flight runs rather than the whole
//! sample. `#[ignore]`d — the nightly CI job runs
//! `cargo test --release -- --ignored`.

use anacin_bench::{peak_rss_mib, reset_peak_rss};
use anacin_core::prelude::*;
use anacin_miniapps::Pattern;

/// Peak-RSS ceiling for the streaming 1024-rank campaign. Measured at
/// ~2.6 GiB (3 worker threads × one in-flight trace+graph each); the
/// ceiling leaves allocator/machine headroom while still failing hard if
/// the path ever rematerialises the whole sample.
const PEAK_RSS_CEILING_MIB: f64 = 6144.0;

#[test]
#[ignore = "nightly: ~1 minute and a few GiB at 1024 ranks"]
fn campaign_at_1024_ranks_streams_within_memory_budget() {
    let cfg = CampaignConfig::new(Pattern::Amg2013, 1024).runs(3);
    let watermark_reset = reset_peak_rss();
    let r = run_campaign_streaming(&cfg).expect("1024-rank campaign must complete");
    // Scale bar: two all-to-all phases per run at 1024 ranks is ~4.2M
    // events per run, ~12.6M per campaign.
    assert!(
        r.total_events >= 10_000_000,
        "campaign must span >=10M events, got {}",
        r.total_events
    );
    assert_eq!(r.matrix.len(), 3);
    for d in r.distance_sample() {
        assert!(d.is_finite() && d >= 0.0, "distance {d}");
    }
    assert!(
        r.mean_distance() > 0.0,
        "100% ND all-to-all must measure ND"
    );
    // The memory bound only means something when the watermark could be
    // reset to exclude whatever ran before this test; skip it otherwise
    // (non-Linux, or /proc/self/clear_refs not writable).
    if watermark_reset {
        if let Some(peak) = peak_rss_mib() {
            assert!(
                peak < PEAK_RSS_CEILING_MIB,
                "peak RSS {peak:.0} MiB exceeds the {PEAK_RSS_CEILING_MIB:.0} MiB streaming budget"
            );
        }
    }
}
