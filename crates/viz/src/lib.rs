//! # anacin-viz
//!
//! Visualisation of non-determinism analyses, reproducing the paper's
//! three figure families in two media each:
//!
//! | Paper figure | SVG | terminal |
//! |---|---|---|
//! | Event graphs (Figs. 1–4) | [`svg::event_graph_svg`] | [`ascii::event_graph_lanes`] |
//! | Kernel-distance violins (Figs. 5–7) | [`svg::violin_svg`] | [`ascii::violins`] |
//! | Callstack frequencies (Fig. 8) | [`svg::bar_chart_svg`] | [`ascii::bar_chart`] |
//!
//! The colour convention follows the paper: green = process start/end,
//! blue = send, red = receive ([`color`]).

#![warn(missing_docs)]

pub mod ascii;
pub mod color;
pub mod gantt;
pub mod heatmap;
pub mod html;
pub mod svg;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::ascii;
    pub use crate::gantt;
    pub use crate::heatmap;
    pub use crate::html::{HtmlReport, Section};
    pub use crate::svg;
}
