//! Terminal renderers: event-graph lanes, violins, bars, and series.
//!
//! Every paper figure has an ASCII twin so the course works over ssh with
//! no display — the textual analogue of the ANACIN-X Jupyter notebook.

use anacin_event_graph::{EdgeKind, EventGraph, NodeKind};
use anacin_mpisim::types::Rank;
use anacin_stats::prelude::*;
use std::fmt::Write as _;

/// Glyph for a node in the lane view: `o` start/end, `S` send, `R` recv.
fn glyph(kind: &NodeKind) -> char {
    match kind {
        NodeKind::Init | NodeKind::Finalize => 'o',
        NodeKind::Send { .. } => 'S',
        NodeKind::Recv { .. } => 'R',
    }
}

/// Render an event graph as one lane per rank plus a message-edge list.
///
/// ```text
/// rank 0: o--R--R--R--o
/// rank 1: o--S--o
/// messages:
///   rank 1 S#1 -> rank 0 R#1
/// ```
pub fn event_graph_lanes(g: &EventGraph) -> String {
    let mut s = String::new();
    for r in 0..g.world_size() {
        let _ = write!(s, "rank {r}: ");
        for (i, id) in g.rank_nodes(Rank(r)).enumerate() {
            if i > 0 {
                s.push_str("--");
            }
            s.push(glyph(&g.node(id).kind));
        }
        s.push('\n');
    }
    s.push_str("messages:\n");
    for (a, b, kind) in g.edges() {
        if kind == EdgeKind::Message {
            let na = g.node(a);
            let nb = g.node(b);
            let _ = writeln!(
                s,
                "  rank {} {}#{} -> rank {} {}#{}",
                na.rank.0,
                glyph(&na.kind),
                na.rank_idx,
                nb.rank.0,
                glyph(&nb.kind),
                nb.rank_idx
            );
        }
    }
    s
}

const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn density_strip(densities: &[f64], width: usize) -> String {
    if densities.is_empty() {
        return String::new();
    }
    let peak = densities.iter().copied().fold(0.0, f64::max);
    let mut out = String::with_capacity(width);
    for i in 0..width {
        let pos = i as f64 / (width - 1).max(1) as f64 * (densities.len() - 1) as f64;
        let d = densities[pos.round() as usize];
        if peak <= 0.0 {
            out.push(' ');
        } else {
            let level = ((d / peak) * (BLOCKS.len() - 1) as f64).round() as usize;
            out.push(BLOCKS[level.min(BLOCKS.len() - 1)]);
        }
    }
    out
}

/// Render a family of violins, one per line, on a shared value axis.
///
/// ```text
/// 32 procs  |▁▂▅█▅▂▁|  median=12.34  iqr=1.20  n=190
/// ```
pub fn violins(violins: &[ViolinSummary], width: usize) -> String {
    let mut s = String::new();
    let label_w = violins.iter().map(|v| v.label.len()).max().unwrap_or(0);
    for v in violins {
        let strip = density_strip(&v.kde_densities, width);
        let _ = writeln!(
            s,
            "{:<label_w$}  |{}|  median={:.4}  iqr={:.4}  n={}",
            v.label,
            strip,
            v.summary.median,
            v.summary.iqr(),
            v.summary.n,
        );
    }
    s
}

/// Render labelled horizontal bars (e.g. callstack frequencies), scaled to
/// the largest value.
pub fn bar_chart(items: &[(String, f64)], width: usize) -> String {
    let peak = items.iter().map(|(_, v)| *v).fold(0.0, f64::max);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut s = String::new();
    for (label, v) in items {
        let n = if peak > 0.0 {
            ((v / peak) * width as f64).round() as usize
        } else {
            0
        };
        let _ = writeln!(
            s,
            "{:<label_w$}  {:<width$}  {:.4}",
            label,
            "#".repeat(n),
            v,
        );
    }
    s
}

/// Render an `(x, y)` series as an aligned two-column table with a spark
/// column (good enough to eyeball the Figure-7 trend in a terminal).
pub fn series_table(series: &[(f64, f64)], x_name: &str, y_name: &str) -> String {
    let peak = series.iter().map(|(_, y)| *y).fold(0.0, f64::max);
    let mut s = String::new();
    let _ = writeln!(s, "{x_name:>12}  {y_name:>14}");
    for (x, y) in series {
        let n = if peak > 0.0 {
            ((y / peak) * 40.0).round() as usize
        } else {
            0
        };
        let _ = writeln!(s, "{x:>12}  {y:>14.4}  {}", "*".repeat(n));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use anacin_mpisim::prelude::*;

    fn race_graph() -> EventGraph {
        let mut b = ProgramBuilder::new(4);
        for r in 1..4 {
            b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
        }
        for _ in 1..4 {
            b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
        }
        let t = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
        EventGraph::from_trace(&t)
    }

    #[test]
    fn lanes_contain_every_rank_and_message() {
        let g = race_graph();
        let s = event_graph_lanes(&g);
        for r in 0..4 {
            assert!(s.contains(&format!("rank {r}: ")));
        }
        assert_eq!(s.matches(" -> ").count(), 3);
        // Rank 0's lane: o then 3 R's then o.
        let lane0 = s.lines().next().unwrap();
        assert_eq!(lane0, "rank 0: o--R--R--R--o");
    }

    #[test]
    fn violin_strip_renders() {
        let v1 = ViolinSummary::from_sample("a", &[1.0, 2.0, 3.0]).unwrap();
        let v2 = ViolinSummary::from_sample("bb", &[10.0, 12.0]).unwrap();
        let s = violins(&[v1, v2], 20);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("median="));
        assert!(s.contains("|"));
        // Labels aligned to the longer label.
        assert!(s.starts_with("a "));
    }

    #[test]
    fn bar_chart_scales_to_peak() {
        let s = bar_chart(&[("big".to_string(), 1.0), ("half".to_string(), 0.5)], 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0].matches('#').count(), 10);
        assert_eq!(lines[1].matches('#').count(), 5);
    }

    #[test]
    fn bar_chart_all_zero() {
        let s = bar_chart(&[("z".to_string(), 0.0)], 10);
        assert_eq!(s.lines().next().unwrap().matches('#').count(), 0);
    }

    #[test]
    fn series_table_rows() {
        let s = series_table(&[(0.0, 0.0), (50.0, 2.0), (100.0, 4.0)], "nd%", "distance");
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains("nd%"));
        // Monotone star counts.
        let stars: Vec<usize> = s.lines().skip(1).map(|l| l.matches('*').count()).collect();
        assert!(stars[0] <= stars[1] && stars[1] <= stars[2]);
    }

    #[test]
    fn density_strip_handles_flat_zero() {
        assert_eq!(density_strip(&[0.0, 0.0], 4), "    ");
        assert_eq!(density_strip(&[], 4), "");
    }
}
