//! Gantt rendering of execution timelines (ASCII + SVG).
//!
//! One horizontal bar per rank; receive segments (where ranks sit waiting
//! on messages) show up as the dominant colour in delay-heavy runs — the
//! visual counterpart of the kernel-distance numbers.

use anacin_mpisim::timeline::{Activity, Timeline};
use anacin_mpisim::types::Rank;
use std::fmt::Write as _;

fn glyph(a: Activity) -> char {
    match a {
        Activity::Sending => 'S',
        Activity::Receiving => 'r',
        Activity::WindingDown => '.',
    }
}

fn fill(a: Activity) -> &'static str {
    match a {
        Activity::Sending => "#1f77b4",
        Activity::Receiving => "#d62728",
        Activity::WindingDown => "#bbbbbb",
    }
}

/// Render a timeline as fixed-width ASCII lanes (`S` = progressing sends,
/// `r` = progressing receives, `.` = winding down).
pub fn gantt_ascii(tl: &Timeline, width: usize) -> String {
    let span = tl.makespan.nanos().max(1) as f64;
    let mut out = String::new();
    for (r, segs) in tl.segments.iter().enumerate() {
        let mut lane = vec![' '; width];
        for s in segs {
            let a = (s.start.nanos() as f64 / span * width as f64).floor() as usize;
            let b = (s.end.nanos() as f64 / span * width as f64).ceil() as usize;
            for cell in lane.iter_mut().take(b.min(width)).skip(a.min(width)) {
                *cell = glyph(s.activity);
            }
        }
        let _ = writeln!(out, "rank {r:>3} |{}|", lane.iter().collect::<String>());
    }
    let _ = writeln!(out, "0ns {:>w$}ns", tl.makespan.nanos(), w = width);
    out
}

/// Render a timeline as an SVG Gantt chart.
pub fn gantt_svg(tl: &Timeline, title: &str) -> String {
    let lane_h = 22.0;
    let margin = 70.0;
    let plot_w = 640.0;
    let n = tl.segments.len();
    let height = margin * 2.0 + lane_h * n as f64;
    let width = margin * 2.0 + plot_w;
    let span = tl.makespan.nanos().max(1) as f64;
    let x_of = |t: u64| margin + t as f64 / span * plot_w;
    let mut s = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {width:.0} {height:.0}\" font-family=\"sans-serif\">\n\
         <title>{title}</title>\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n\
         <text x=\"{:.1}\" y=\"24\" font-size=\"14\" text-anchor=\"middle\">{title}</text>\n",
        width / 2.0
    );
    for (r, segs) in tl.segments.iter().enumerate() {
        let y = margin + r as f64 * lane_h;
        let _ = writeln!(
            s,
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" text-anchor=\"end\">rank {r}</text>",
            margin - 8.0,
            y + lane_h * 0.65
        );
        for seg in segs {
            let x1 = x_of(seg.start.nanos());
            let x2 = x_of(seg.end.nanos());
            let _ = writeln!(
                s,
                "<rect x=\"{x1:.1}\" y=\"{:.1}\" width=\"{:.2}\" height=\"{:.1}\" \
                 fill=\"{}\" stroke=\"white\" stroke-width=\"0.5\"/>",
                y + 3.0,
                (x2 - x1).max(0.5),
                lane_h - 6.0,
                fill(seg.activity)
            );
        }
    }
    // Legend.
    for (i, a) in [
        Activity::Sending,
        Activity::Receiving,
        Activity::WindingDown,
    ]
    .iter()
    .enumerate()
    {
        let x = margin + i as f64 * 130.0;
        let y = height - 24.0;
        let _ = writeln!(
            s,
            "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"12\" height=\"12\" fill=\"{}\"/>\
             <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\">{}</text>",
            fill(*a),
            x + 16.0,
            y + 10.0,
            a.label()
        );
    }
    s.push_str("</svg>\n");
    s
}

/// Summarise where time went, one line per rank.
pub fn time_breakdown(tl: &Timeline) -> String {
    let mut out = String::new();
    for r in 0..tl.segments.len() {
        let rank = Rank(r as u32);
        let (send, recv, wind) = tl.totals(rank);
        let total = (send + recv + wind).max(1);
        let _ = writeln!(
            out,
            "rank {r:>3}: {:>5.1}% sending, {:>5.1}% receiving/waiting, {:>5.1}% winding down",
            send as f64 / total as f64 * 100.0,
            recv as f64 / total as f64 * 100.0,
            wind as f64 / total as f64 * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use anacin_mpisim::prelude::*;

    fn timeline() -> Timeline {
        let mut b = ProgramBuilder::new(2);
        b.rank(Rank(0)).compute(2000).send(Rank(1), Tag(0), 8);
        b.rank(Rank(1)).recv(Rank(0), Tag(0).into());
        let t = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
        Timeline::of(&t)
    }

    #[test]
    fn ascii_has_one_lane_per_rank() {
        let s = gantt_ascii(&timeline(), 40);
        assert!(s.contains("rank   0 |"));
        assert!(s.contains("rank   1 |"));
        // The blocked receiver shows receive glyphs.
        let lane1 = s.lines().nth(1).unwrap();
        assert!(lane1.contains('r'));
    }

    #[test]
    fn svg_structure() {
        let svg = gantt_svg(&timeline(), "pingpong timeline");
        assert!(svg.contains("pingpong timeline"));
        assert!(svg.matches("<rect").count() >= 4); // bg + segments + legend
        assert!(svg.contains("#d62728"));
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn breakdown_percentages() {
        let text = time_breakdown(&timeline());
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains('%'));
    }
}
