//! The figure palette.
//!
//! The paper's event-graph figures use a fixed colour code: "Green circles
//! correspond to the start or end of a process; blue circles correspond to
//! sending a message; and red circles correspond to receiving a message."

use anacin_event_graph::NodeKind;

/// Fill colour of an event-graph node (paper convention).
pub fn node_fill(kind: &NodeKind) -> &'static str {
    match kind {
        NodeKind::Init | NodeKind::Finalize => "#2e8b57", // green
        NodeKind::Send { .. } => "#1f77b4",               // blue
        NodeKind::Recv { .. } => "#d62728",               // red
    }
}

/// Violin body fill.
pub const VIOLIN_FILL: &str = "#7f9ec9";
/// Violin median marker.
pub const MEDIAN_STROKE: &str = "#222222";
/// Bar fill for callstack charts.
pub const BAR_FILL: &str = "#1f77b4";
/// Chart axis/frame colour.
pub const AXIS_STROKE: &str = "#444444";

#[cfg(test)]
mod tests {
    use super::*;
    use anacin_mpisim::types::Rank;

    #[test]
    fn paper_colour_convention() {
        assert_eq!(node_fill(&NodeKind::Init), "#2e8b57");
        assert_eq!(node_fill(&NodeKind::Finalize), "#2e8b57");
        assert_eq!(node_fill(&NodeKind::Send { dst: Rank(0) }), "#1f77b4");
        assert_eq!(
            node_fill(&NodeKind::Recv {
                src: Rank(0),
                wildcard: true
            }),
            "#d62728"
        );
    }
}
