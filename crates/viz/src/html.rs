//! Self-contained HTML campaign reports.
//!
//! One file, no external assets: embeds the violin, heatmap, embedding
//! scatter and event-graph SVGs, the measurement table, and the root-cause
//! ranking. The course's take-home artifact — students attach it to their
//! assignment instead of screenshots.

use std::fmt::Write as _;

/// One section of a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section heading.
    pub title: String,
    /// Explanatory paragraph (plain text; HTML-escaped on render).
    pub prose: String,
    /// Optional inline SVG (inserted verbatim).
    pub svg: Option<String>,
    /// Optional preformatted block (tables, ASCII art; escaped).
    pub pre: Option<String>,
}

/// A report under construction.
#[derive(Debug, Clone, Default)]
pub struct HtmlReport {
    title: String,
    subtitle: String,
    sections: Vec<Section>,
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

impl HtmlReport {
    /// Start a report.
    pub fn new(title: impl Into<String>, subtitle: impl Into<String>) -> Self {
        HtmlReport {
            title: title.into(),
            subtitle: subtitle.into(),
            sections: Vec::new(),
        }
    }

    /// Append a section.
    pub fn section(&mut self, section: Section) -> &mut Self {
        self.sections.push(section);
        self
    }

    /// Convenience: append a prose + preformatted section.
    pub fn text_section(
        &mut self,
        title: impl Into<String>,
        prose: impl Into<String>,
        pre: impl Into<String>,
    ) -> &mut Self {
        self.section(Section {
            title: title.into(),
            prose: prose.into(),
            svg: None,
            pre: Some(pre.into()),
        })
    }

    /// Convenience: append a prose + SVG section.
    pub fn svg_section(
        &mut self,
        title: impl Into<String>,
        prose: impl Into<String>,
        svg: impl Into<String>,
    ) -> &mut Self {
        self.section(Section {
            title: title.into(),
            prose: prose.into(),
            svg: Some(svg.into()),
            pre: None,
        })
    }

    /// Number of sections so far.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// True when no section has been added.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Render the self-contained HTML document.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
             <title>{}</title>\n<style>\n\
             body {{ font-family: sans-serif; max-width: 70rem; margin: 2rem auto; \
             padding: 0 1rem; color: #222; }}\n\
             h1 {{ border-bottom: 2px solid #1f77b4; padding-bottom: 0.3rem; }}\n\
             h2 {{ color: #1f77b4; margin-top: 2rem; }}\n\
             pre {{ background: #f6f8fa; padding: 0.8rem; overflow-x: auto; \
             border-radius: 6px; font-size: 0.85rem; }}\n\
             .subtitle {{ color: #666; }}\n\
             figure {{ margin: 1rem 0; text-align: center; }}\n\
             </style>\n</head>\n<body>\n<h1>{}</h1>\n<p class=\"subtitle\">{}</p>\n",
            esc(&self.title),
            esc(&self.title),
            esc(&self.subtitle)
        );
        for sec in &self.sections {
            let _ = write!(
                s,
                "<h2>{}</h2>\n<p>{}</p>\n",
                esc(&sec.title),
                esc(&sec.prose)
            );
            if let Some(svg) = &sec.svg {
                let _ = write!(s, "<figure>\n{svg}\n</figure>\n");
            }
            if let Some(pre) = &sec.pre {
                let _ = writeln!(s, "<pre>{}</pre>", esc(pre));
            }
        }
        s.push_str("</body>\n</html>\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_sections_in_order() {
        let mut r = HtmlReport::new("Campaign", "race @ 100%");
        r.text_section("Summary", "stats below", "mean 1.0\nmedian 2.0");
        r.svg_section("Violin", "distribution", "<svg><circle/></svg>");
        let html = r.render();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<h1>Campaign</h1>"));
        let i_sum = html.find("Summary").unwrap();
        let i_vio = html.find("Violin").unwrap();
        assert!(i_sum < i_vio);
        assert!(html.contains("<svg><circle/></svg>"));
        assert!(html.contains("mean 1.0"));
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn escapes_text_but_not_svg() {
        let mut r = HtmlReport::new("a < b", "x & y");
        r.text_section("T", "1 < 2", "a > b");
        let html = r.render();
        assert!(html.contains("a &lt; b"));
        assert!(html.contains("x &amp; y"));
        assert!(html.contains("1 &lt; 2"));
        assert!(html.contains("a &gt; b"));
    }

    #[test]
    fn empty_report_is_valid_html() {
        let html = HtmlReport::new("t", "s").render();
        assert!(html.contains("</html>"));
    }
}
