//! Distance-matrix heatmaps and run-embedding scatter plots (ASCII + SVG).
//!
//! Companions to the violin view: the heatmap shows *which* run pairs
//! diverge, the scatter shows the geometry of the run sample in kernel
//! space (via `anacin_kernels::embed`).

use std::fmt::Write as _;

const SHADES: [char; 5] = [' ', '░', '▒', '▓', '█'];

/// Render a symmetric matrix (given as closure) as an ASCII heatmap.
pub fn heatmap_ascii(n: usize, value: impl Fn(usize, usize) -> f64) -> String {
    let mut peak = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            peak = peak.max(value(i, j));
        }
    }
    let mut s = String::new();
    let _ = writeln!(
        s,
        "    {}",
        (0..n)
            .map(|j| format!("{:>2}", j % 100))
            .collect::<String>()
    );
    for i in 0..n {
        let _ = write!(s, "{i:>3} ");
        for j in 0..n {
            let v = value(i, j);
            let shade = if peak <= 0.0 {
                SHADES[0]
            } else {
                SHADES[((v / peak) * (SHADES.len() - 1) as f64).round() as usize]
            };
            s.push(shade);
            s.push(shade);
        }
        s.push('\n');
    }
    let _ = writeln!(s, "scale: blank = 0, full block = {peak:.4}");
    s
}

/// Render a symmetric matrix as an SVG heatmap.
pub fn heatmap_svg(n: usize, value: impl Fn(usize, usize) -> f64, title: &str) -> String {
    let cell = 18.0;
    let margin = 50.0;
    let size = margin * 2.0 + cell * n as f64;
    let mut peak = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            peak = peak.max(value(i, j));
        }
    }
    let mut s = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{size:.0}\" height=\"{size:.0}\" \
         viewBox=\"0 0 {size:.0} {size:.0}\" font-family=\"sans-serif\">\n\
         <title>{title}</title>\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
    );
    for i in 0..n {
        for j in 0..n {
            let v = if peak > 0.0 { value(i, j) / peak } else { 0.0 };
            // White → dark blue ramp.
            let shade = (255.0 * (1.0 - v * 0.85)) as u8;
            let _ = writeln!(
                s,
                "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{cell}\" height=\"{cell}\" \
                 fill=\"rgb({shade},{shade},255)\" stroke=\"#eee\"/>",
                margin + j as f64 * cell,
                margin + i as f64 * cell
            );
        }
        let _ = writeln!(
            s,
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"9\" text-anchor=\"end\">{i}</text>",
            margin - 4.0,
            margin + i as f64 * cell + cell * 0.7
        );
    }
    let _ = writeln!(
        s,
        "<text x=\"{:.1}\" y=\"24\" font-size=\"13\" text-anchor=\"middle\">{title}</text>",
        size / 2.0
    );
    s.push_str("</svg>\n");
    s
}

/// Render 2-D points as an SVG scatter plot (one dot per run).
pub fn scatter_svg(points: &[(f64, f64)], title: &str) -> String {
    let margin = 50.0;
    let plot = 360.0;
    let size = margin * 2.0 + plot;
    let (mut xlo, mut xhi, mut ylo, mut yhi) = (
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
    );
    for &(x, y) in points {
        xlo = xlo.min(x);
        xhi = xhi.max(x);
        ylo = ylo.min(y);
        yhi = yhi.max(y);
    }
    if !xlo.is_finite() || xhi <= xlo {
        xlo = -1.0;
        xhi = 1.0;
    }
    if !ylo.is_finite() || yhi <= ylo {
        ylo = -1.0;
        yhi = 1.0;
    }
    let px = |x: f64| margin + (x - xlo) / (xhi - xlo) * plot;
    let py = |y: f64| margin + plot - (y - ylo) / (yhi - ylo) * plot;
    let mut s = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{size:.0}\" height=\"{size:.0}\" \
         viewBox=\"0 0 {size:.0} {size:.0}\" font-family=\"sans-serif\">\n\
         <title>{title}</title>\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n\
         <rect x=\"{margin}\" y=\"{margin}\" width=\"{plot}\" height=\"{plot}\" fill=\"none\" \
         stroke=\"#888\"/>\n"
    );
    for (i, &(x, y)) in points.iter().enumerate() {
        let _ = writeln!(
            s,
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"5\" fill=\"{}\" fill-opacity=\"0.75\"/>",
            px(x),
            py(y),
            crate::color::BAR_FILL
        );
        let _ = writeln!(
            s,
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"8\">{i}</text>",
            px(x) + 6.0,
            py(y) - 4.0
        );
    }
    let _ = writeln!(
        s,
        "<text x=\"{:.1}\" y=\"24\" font-size=\"13\" text-anchor=\"middle\">{title}</text>",
        size / 2.0
    );
    s.push_str("</svg>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_heatmap_shades_scale() {
        let s = heatmap_ascii(3, |i, j| (i as f64 - j as f64).abs());
        assert!(s.contains('█'));
        assert!(s.contains("scale:"));
        // Diagonal is blank (zero distance).
        assert_eq!(s.lines().count(), 5); // header + 3 rows + scale
    }

    #[test]
    fn ascii_heatmap_all_zero() {
        let s = heatmap_ascii(2, |_, _| 0.0);
        assert!(!s.contains('█'));
    }

    #[test]
    fn svg_heatmap_cell_count() {
        let svg = heatmap_svg(4, |i, j| (i + j) as f64, "pairwise distances");
        assert_eq!(svg.matches("<rect").count(), 1 + 16); // background + cells
        assert!(svg.contains("pairwise distances"));
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn scatter_marks_every_point() {
        let pts = vec![(0.0, 0.0), (1.0, 1.0), (-1.0, 2.0)];
        let svg = scatter_svg(&pts, "runs in kernel space");
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.contains("runs in kernel space"));
    }

    #[test]
    fn scatter_degenerate_inputs() {
        assert!(scatter_svg(&[], "empty").contains("</svg>"));
        assert!(scatter_svg(&[(2.0, 2.0)], "one").contains("<circle"));
    }
}
