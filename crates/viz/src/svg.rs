//! Self-contained SVG writers for the paper's three figure families:
//! event graphs (Figs. 1–4), violin plots (Figs. 5–7), and callstack bar
//! charts (Fig. 8), plus a generic line chart.
//!
//! No drawing dependencies: the writers emit plain SVG 1.1 strings.

use crate::color;
use anacin_event_graph::{EdgeKind, EventGraph};
use anacin_mpisim::types::Rank;
use anacin_stats::prelude::ViolinSummary;
use std::fmt::Write as _;

fn svg_header(width: f64, height: f64, title: &str) -> String {
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {width:.0} {height:.0}\" font-family=\"sans-serif\">\n\
         <title>{title}</title>\n\
         <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
    )
}

/// Escape text content for XML.
fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Render an event graph in the paper's style: one horizontal row per
/// rank, green start/end, blue sends, red receives, grey program edges,
/// black message edges.
pub fn event_graph_svg(g: &EventGraph, title: &str) -> String {
    let dx = 60.0;
    let dy = 70.0;
    let margin = 60.0;
    let max_len = (0..g.world_size())
        .map(|r| g.rank_nodes(Rank(r)).count())
        .max()
        .unwrap_or(1);
    let width = margin * 2.0 + dx * (max_len.saturating_sub(1)) as f64;
    let height = margin * 2.0 + dy * (g.world_size().saturating_sub(1)) as f64;
    let pos = |id: anacin_event_graph::NodeId| {
        let n = g.node(id);
        (
            margin + n.rank_idx as f64 * dx,
            margin + n.rank.0 as f64 * dy,
        )
    };
    let mut s = svg_header(width, height, title);
    // Edges first (under the nodes).
    for (a, b, kind) in g.edges() {
        let (x1, y1) = pos(a);
        let (x2, y2) = pos(b);
        let (stroke, dash) = match kind {
            EdgeKind::Program => ("#999999", ""),
            EdgeKind::Message => ("#222222", " stroke-dasharray=\"4 2\""),
        };
        let _ = writeln!(
            s,
            "<line x1=\"{x1:.1}\" y1=\"{y1:.1}\" x2=\"{x2:.1}\" y2=\"{y2:.1}\" \
             stroke=\"{stroke}\" stroke-width=\"1.5\"{dash}/>"
        );
    }
    // Rank labels.
    for r in 0..g.world_size() {
        let y = margin + r as f64 * dy;
        let _ = writeln!(
            s,
            "<text x=\"8\" y=\"{:.1}\" font-size=\"12\">Process {r}</text>",
            y + 4.0
        );
    }
    // Nodes.
    for id in g.node_ids() {
        let (x, y) = pos(id);
        let fill = color::node_fill(&g.node(id).kind);
        let _ = writeln!(
            s,
            "<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"9\" fill=\"{fill}\" stroke=\"#333\"/>"
        );
    }
    s.push_str("</svg>\n");
    s
}

/// Render a family of violins on a shared Y axis (kernel distance), one
/// violin per setting — the paper's Figures 5–7 shape.
pub fn violin_svg(violins: &[ViolinSummary], title: &str, y_label: &str) -> String {
    let slot = 140.0;
    let margin = 70.0;
    let plot_h = 320.0;
    let width = margin * 2.0 + slot * violins.len() as f64;
    let height = margin * 2.0 + plot_h;
    // Shared value range.
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for v in violins {
        for &x in &v.kde_xs {
            lo = lo.min(x);
            hi = hi.max(x);
        }
    }
    if !lo.is_finite() || hi <= lo {
        lo = 0.0;
        hi = 1.0;
    }
    let y_of = |val: f64| margin + plot_h - (val - lo) / (hi - lo) * plot_h;
    let mut s = svg_header(width, height, title);
    let _ = writeln!(
        s,
        "<text x=\"{:.1}\" y=\"24\" font-size=\"14\" text-anchor=\"middle\">{}</text>",
        width / 2.0,
        esc(title)
    );
    // Y axis.
    let _ = writeln!(
        s,
        "<line x1=\"{m:.1}\" y1=\"{t:.1}\" x2=\"{m:.1}\" y2=\"{b:.1}\" stroke=\"{ax}\"/>",
        m = margin,
        t = margin,
        b = margin + plot_h,
        ax = color::AXIS_STROKE
    );
    for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let val = lo + (hi - lo) * frac;
        let y = y_of(val);
        let _ = writeln!(
            s,
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" text-anchor=\"end\">{:.3}</text>",
            margin - 6.0,
            y + 3.0,
            val
        );
    }
    let _ = writeln!(
        s,
        "<text x=\"16\" y=\"{:.1}\" font-size=\"12\" transform=\"rotate(-90 16 {:.1})\" \
         text-anchor=\"middle\">{}</text>",
        margin + plot_h / 2.0,
        margin + plot_h / 2.0,
        esc(y_label)
    );
    // Violins.
    for (i, v) in violins.iter().enumerate() {
        let cx = margin + slot * (i as f64 + 0.5);
        let peak = v.peak_density().max(f64::MIN_POSITIVE);
        let half_w = slot * 0.35;
        let mut pts_right = Vec::with_capacity(v.kde_xs.len());
        let mut pts_left = Vec::with_capacity(v.kde_xs.len());
        for (x, d) in v.kde_xs.iter().zip(&v.kde_densities) {
            let y = y_of(*x);
            let w = d / peak * half_w;
            pts_right.push(format!("{:.1},{:.1}", cx + w, y));
            pts_left.push(format!("{:.1},{:.1}", cx - w, y));
        }
        pts_left.reverse();
        let _ = writeln!(
            s,
            "<polygon points=\"{} {}\" fill=\"{}\" fill-opacity=\"0.7\" stroke=\"#446\"/>",
            pts_right.join(" "),
            pts_left.join(" "),
            color::VIOLIN_FILL
        );
        // Median marker and quartile box.
        let med_y = y_of(v.summary.median);
        let _ = writeln!(
            s,
            "<line x1=\"{:.1}\" y1=\"{med_y:.1}\" x2=\"{:.1}\" y2=\"{med_y:.1}\" \
             stroke=\"{}\" stroke-width=\"2\"/>",
            cx - half_w * 0.5,
            cx + half_w * 0.5,
            color::MEDIAN_STROKE
        );
        let _ = writeln!(
            s,
            "<line x1=\"{cx:.1}\" y1=\"{:.1}\" x2=\"{cx:.1}\" y2=\"{:.1}\" \
             stroke=\"{}\" stroke-width=\"1\"/>",
            y_of(v.summary.q3),
            y_of(v.summary.q1),
            color::MEDIAN_STROKE
        );
        let _ = writeln!(
            s,
            "<text x=\"{cx:.1}\" y=\"{:.1}\" font-size=\"12\" text-anchor=\"middle\">{}</text>",
            margin + plot_h + 24.0,
            esc(&v.label)
        );
    }
    s.push_str("</svg>\n");
    s
}

/// Render a labelled vertical bar chart (normalized callstack frequencies,
/// the paper's Figure 8 shape).
pub fn bar_chart_svg(items: &[(String, f64)], title: &str, y_label: &str) -> String {
    let slot = 90.0;
    let margin = 70.0;
    let plot_h = 300.0;
    let label_h = 120.0;
    let width = margin * 2.0 + slot * items.len() as f64;
    let height = margin + plot_h + label_h;
    let peak = items
        .iter()
        .map(|(_, v)| *v)
        .fold(0.0, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut s = svg_header(width, height, title);
    let _ = writeln!(
        s,
        "<text x=\"{:.1}\" y=\"24\" font-size=\"14\" text-anchor=\"middle\">{}</text>",
        width / 2.0,
        esc(title)
    );
    let _ = writeln!(
        s,
        "<line x1=\"{m:.1}\" y1=\"{t:.1}\" x2=\"{m:.1}\" y2=\"{b:.1}\" stroke=\"{ax}\"/>",
        m = margin,
        t = margin,
        b = margin + plot_h,
        ax = color::AXIS_STROKE
    );
    let _ = writeln!(
        s,
        "<text x=\"16\" y=\"{:.1}\" font-size=\"12\" transform=\"rotate(-90 16 {:.1})\" \
         text-anchor=\"middle\">{}</text>",
        margin + plot_h / 2.0,
        margin + plot_h / 2.0,
        esc(y_label)
    );
    for (i, (label, v)) in items.iter().enumerate() {
        let x = margin + slot * i as f64 + slot * 0.15;
        let h = v / peak * plot_h;
        let y = margin + plot_h - h;
        let _ = writeln!(
            s,
            "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{:.1}\" height=\"{h:.1}\" fill=\"{}\"/>",
            slot * 0.7,
            color::BAR_FILL
        );
        let lx = x + slot * 0.35;
        let ly = margin + plot_h + 12.0;
        let _ = writeln!(
            s,
            "<text x=\"{lx:.1}\" y=\"{ly:.1}\" font-size=\"9\" text-anchor=\"end\" \
             transform=\"rotate(-45 {lx:.1} {ly:.1})\">{}</text>",
            esc(label)
        );
        let _ = writeln!(
            s,
            "<text x=\"{lx:.1}\" y=\"{:.1}\" font-size=\"10\" text-anchor=\"middle\">{v:.3}</text>",
            y - 4.0
        );
    }
    s.push_str("</svg>\n");
    s
}

/// Render an `(x, y)` series as a line chart with point markers.
pub fn line_chart_svg(series: &[(f64, f64)], title: &str, x_label: &str, y_label: &str) -> String {
    let margin = 70.0;
    let plot_w = 460.0;
    let plot_h = 300.0;
    let width = margin * 2.0 + plot_w;
    let height = margin * 2.0 + plot_h;
    let (mut xlo, mut xhi, mut ylo, mut yhi) = (
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
    );
    for &(x, y) in series {
        xlo = xlo.min(x);
        xhi = xhi.max(x);
        ylo = ylo.min(y);
        yhi = yhi.max(y);
    }
    if !xlo.is_finite() || xhi <= xlo {
        xlo = 0.0;
        xhi = 1.0;
    }
    if !ylo.is_finite() || yhi <= ylo {
        ylo = 0.0;
        yhi = ylo + 1.0;
    }
    let px = |x: f64| margin + (x - xlo) / (xhi - xlo) * plot_w;
    let py = |y: f64| margin + plot_h - (y - ylo) / (yhi - ylo) * plot_h;
    let mut s = svg_header(width, height, title);
    let _ = writeln!(
        s,
        "<text x=\"{:.1}\" y=\"24\" font-size=\"14\" text-anchor=\"middle\">{}</text>",
        width / 2.0,
        esc(title)
    );
    let _ = writeln!(
        s,
        "<line x1=\"{m:.1}\" y1=\"{b:.1}\" x2=\"{r:.1}\" y2=\"{b:.1}\" stroke=\"{ax}\"/>\
         <line x1=\"{m:.1}\" y1=\"{t:.1}\" x2=\"{m:.1}\" y2=\"{b:.1}\" stroke=\"{ax}\"/>",
        m = margin,
        t = margin,
        b = margin + plot_h,
        r = margin + plot_w,
        ax = color::AXIS_STROKE
    );
    let _ = writeln!(
        s,
        "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"12\" text-anchor=\"middle\">{}</text>",
        margin + plot_w / 2.0,
        margin + plot_h + 36.0,
        esc(x_label)
    );
    let _ = writeln!(
        s,
        "<text x=\"16\" y=\"{:.1}\" font-size=\"12\" transform=\"rotate(-90 16 {:.1})\" \
         text-anchor=\"middle\">{}</text>",
        margin + plot_h / 2.0,
        margin + plot_h / 2.0,
        esc(y_label)
    );
    if series.len() >= 2 {
        let pts: Vec<String> = series
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
            .collect();
        let _ = writeln!(
            s,
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{}\" stroke-width=\"2\"/>",
            pts.join(" "),
            color::BAR_FILL
        );
    }
    for &(x, y) in series {
        let _ = writeln!(
            s,
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"4\" fill=\"{}\"/>",
            px(x),
            py(y),
            color::BAR_FILL
        );
        let _ = writeln!(
            s,
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"9\" text-anchor=\"middle\">{x}</text>",
            px(x),
            margin + plot_h + 14.0
        );
    }
    s.push_str("</svg>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use anacin_mpisim::prelude::*;

    fn race_graph() -> EventGraph {
        let mut b = ProgramBuilder::new(4);
        for r in 1..4 {
            b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
        }
        for _ in 1..4 {
            b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
        }
        let t = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
        EventGraph::from_trace(&t)
    }

    #[test]
    fn event_graph_svg_structure() {
        let g = race_graph();
        let svg = event_graph_svg(&g, "fig2");
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<circle").count(), g.node_count());
        assert_eq!(svg.matches("<line").count(), g.edge_count());
        // Paper colours present.
        assert!(svg.contains("#2e8b57"));
        assert!(svg.contains("#1f77b4"));
        assert!(svg.contains("#d62728"));
        // Rank labels.
        for r in 0..4 {
            assert!(svg.contains(&format!("Process {r}")));
        }
    }

    #[test]
    fn violin_svg_structure() {
        let v1 = ViolinSummary::from_sample("16 procs", &[1.0, 1.5, 2.0, 2.2]).unwrap();
        let v2 = ViolinSummary::from_sample("32 procs", &[3.0, 3.5, 4.0, 4.4]).unwrap();
        let svg = violin_svg(&[v1, v2], "Fig 5", "kernel distance");
        assert_eq!(svg.matches("<polygon").count(), 2);
        assert!(svg.contains("16 procs"));
        assert!(svg.contains("32 procs"));
        assert!(svg.contains("kernel distance"));
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn bar_chart_svg_structure() {
        let items = vec![
            ("a > MPI_Irecv".to_string(), 0.6),
            ("b > MPI_Send".to_string(), 0.4),
        ];
        let svg = bar_chart_svg(&items, "Fig 8", "relative frequency");
        assert_eq!(svg.matches("<rect").count(), 3); // background + 2 bars
        assert!(svg.contains("MPI_Irecv"));
        assert!(svg.contains("relative frequency"));
    }

    #[test]
    fn line_chart_svg_structure() {
        let series: Vec<(f64, f64)> = (0..11).map(|i| (i as f64 * 10.0, i as f64)).collect();
        let svg = line_chart_svg(&series, "Fig 7", "% nd", "kernel distance");
        assert!(svg.contains("<polyline"));
        assert_eq!(svg.matches("<circle").count(), 11);
        assert!(svg.contains("% nd"));
    }

    #[test]
    fn xml_escaping() {
        assert_eq!(esc("a > b & c < d"), "a &gt; b &amp; c &lt; d");
        let items = vec![("main > f<T>".to_string(), 1.0)];
        let svg = bar_chart_svg(&items, "t", "y");
        assert!(svg.contains("main &gt; f&lt;T&gt;"));
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let svg = line_chart_svg(&[], "empty", "x", "y");
        assert!(svg.contains("</svg>"));
        let v = ViolinSummary::from_sample("const", &[2.0, 2.0, 2.0]).unwrap();
        let svg2 = violin_svg(&[v], "t", "y");
        assert!(svg2.contains("<polygon"));
    }
}
